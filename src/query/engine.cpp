#include "query/engine.h"

#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

#include "analysis/critical_path.h"
#include "analysis/incremental.h"
#include "analysis/races.h"
#include "analysis/taint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/overloaded.h"
#include "query/wire.h"
#include "util/parallel.h"

namespace inspector::query {

namespace {

using detail::Overloaded;

/// Normalize the page-set fields of a query, so order/duplicate
/// variants of the same request share one cache key and one dispatch
/// path.
Query canonicalized(Query q) {
  std::visit(Overloaded{
                 [](RacesQuery& r) { page_set_normalize(r.ignored_pages); },
                 [](TaintQuery& t) { page_set_normalize(t.seed_pages); },
                 [](InvalidateQuery& i) {
                   page_set_normalize(i.changed_pages);
                 },
                 [](auto&) {},
             },
             q);
  return q;
}

/// Per-query-kind registry handles, resolved once per kind: a lookup
/// is an index into this array plus one acquire load, so the metrics
/// cost on the execute path is two relaxed RMWs.
struct KindMetrics {
  obs::Counter* count;
  obs::Histogram* latency;
};

KindMetrics& kind_metrics(const Query& q) {
  static std::array<std::atomic<KindMetrics*>, std::variant_size_v<Query>>
      slots{};
  std::atomic<KindMetrics*>& slot = slots[q.index()];
  KindMetrics* m = slot.load(std::memory_order_acquire);
  if (m == nullptr) {
    auto& reg = obs::Registry::global();
    const std::string kind = query_name(q);
    auto* fresh = new KindMetrics{
        &reg.counter("query_total{kind=\"" + kind + "\"}"),
        &reg.histogram("query_latency_us{kind=\"" + kind + "\"}")};
    KindMetrics* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel)) {
      m = fresh;
    } else {
      delete fresh;  // lost the race; the registry handles are shared
      m = expected;
    }
  }
  return *m;
}

}  // namespace

namespace detail {

Status node_range_error(cpg::NodeId id, std::size_t count) {
  return {StatusCode::kOutOfRange,
          "node id " + std::to_string(id) + " out of range [0, " +
              std::to_string(count) + ")"};
}

Status untouched_page_error(std::uint64_t page) {
  return {StatusCode::kNotFound,
          "page " + std::to_string(page) +
              " was not touched by any recorded node"};
}

Status cyclic_error(const char* what) {
  return {StatusCode::kFailedPrecondition,
          std::string(what) +
              " requires a topological order, but the graph has a cycle"};
}

Status cursor_not_found_error(std::uint64_t cursor) {
  return {StatusCode::kNotFound,
          "cursor " + std::to_string(cursor) +
              " was never issued by this session (or was "
              "evicted by the per-session cursor cap)"};
}

Status cursor_exhausted_error(std::uint64_t cursor) {
  return {StatusCode::kExhausted,
          "cursor " + std::to_string(cursor) + " is exhausted"};
}

}  // namespace detail

using detail::cyclic_error;
using detail::node_range_error;
using detail::untouched_page_error;

GraphQueryBackend::GraphQueryBackend(std::shared_ptr<const cpg::Graph> graph)
    : graph_(std::move(graph)) {
  if (!graph_) graph_ = std::make_shared<const cpg::Graph>();
  try {
    (void)graph_->topological_view();
  } catch (const std::logic_error&) {
    cyclic_ = true;
  }
}

QueryEngine::QueryEngine(std::shared_ptr<const cpg::Graph> graph,
                         Options options)
    : QueryEngine(std::make_shared<const GraphQueryBackend>(std::move(graph)),
                  options) {}

QueryEngine::QueryEngine(std::shared_ptr<const QueryBackend> backend,
                         Options options)
    : backend_(std::move(backend)), options_(options) {
  if (!backend_) {
    backend_ = std::make_shared<const GraphQueryBackend>(nullptr);
  }
  sessions_.emplace(kDefaultSession, Session{});
}

const cpg::Graph& QueryEngine::graph() const {
  const auto* graph_backend =
      dynamic_cast<const GraphQueryBackend*>(backend_.get());
  if (graph_backend == nullptr) {
    // lint: allow(no-throw-across-boundary) documented throwing accessor; calling it on a non-graph engine is a programming error, not a request failure
    throw std::logic_error("QueryEngine::graph(): engine is not graph-backed");
  }
  return graph_backend->graph();
}

std::shared_ptr<const cpg::Graph> QueryEngine::snapshot() const {
  const auto* graph_backend =
      dynamic_cast<const GraphQueryBackend*>(backend_.get());
  if (graph_backend == nullptr) {
    // lint: allow(no-throw-across-boundary) documented throwing accessor; calling it on a non-graph engine is a programming error, not a request failure
    throw std::logic_error(
        "QueryEngine::snapshot(): engine is not graph-backed");
  }
  return graph_backend->snapshot();
}

QueryEngine::SessionId QueryEngine::open_session() {
  std::lock_guard lock(mu_);
  const SessionId id = next_session_id_++;
  sessions_.emplace(id, Session{});
  return id;
}

Status QueryEngine::close_session(SessionId session) {
  if (session == kDefaultSession) {
    return {StatusCode::kInvalidArgument,
            "the default session cannot be closed"};
  }
  std::lock_guard lock(mu_);
  if (sessions_.erase(session) == 0) {
    return {StatusCode::kNotFound,
            "unknown session " + std::to_string(session)};
  }
  return Status::Ok();
}

Result<Execution> GraphQueryBackend::execute(const Query& q) const {
  auto result = run_query(q);
  if (!result.ok()) return result.status();
  // The in-memory graph is whole by construction: never degraded.
  return Execution{std::move(result).value(), false};
}

Result<QueryResult> GraphQueryBackend::run_query(const Query& q) const {
  const cpg::Graph& g = *graph_;
  const std::size_t node_count = g.nodes().size();
  const auto valid_node = [&](cpg::NodeId id) { return id < node_count; };

  return std::visit(
      Overloaded{
          [&](const BackwardSliceQuery& s) -> Result<QueryResult> {
            if (!valid_node(s.node)) return node_range_error(s.node, node_count);
            return QueryResult(NodeListResult{g.backward_slice(s.node)});
          },
          [&](const ForwardSliceQuery& s) -> Result<QueryResult> {
            if (!valid_node(s.node)) return node_range_error(s.node, node_count);
            return QueryResult(NodeListResult{g.forward_slice(s.node)});
          },
          [&](const LatestWritersQuery& s) -> Result<QueryResult> {
            if (!valid_node(s.node)) return node_range_error(s.node, node_count);
            return QueryResult(EdgeListResult{g.latest_writers(s.node)});
          },
          [&](const DataDependenciesQuery& s) -> Result<QueryResult> {
            if (!valid_node(s.node)) return node_range_error(s.node, node_count);
            return QueryResult(EdgeListResult{g.data_dependencies(s.node)});
          },
          [&](const PageAccessorsQuery& s) -> Result<QueryResult> {
            if (!g.page_index_of(s.page)) {
              return untouched_page_error(s.page);
            }
            PageAccessorsResult out;
            out.page = s.page;
            out.writers = g.writers_of_page(s.page);
            out.readers = g.readers_of_page(s.page);
            return QueryResult(std::move(out));
          },
          [&](const HappensBeforeQuery& s) -> Result<QueryResult> {
            if (!valid_node(s.first)) {
              return node_range_error(s.first, node_count);
            }
            if (!valid_node(s.second)) {
              return node_range_error(s.second, node_count);
            }
            HappensBeforeResult out;
            if (s.first == s.second) {
              out.ordering = Ordering::kEqual;
            } else if (g.happens_before(s.first, s.second)) {
              out.ordering = Ordering::kBefore;
            } else if (g.happens_before(s.second, s.first)) {
              out.ordering = Ordering::kAfter;
            } else {
              out.ordering = Ordering::kConcurrent;
            }
            return QueryResult(out);
          },
          [&](const RacesQuery& s) -> Result<QueryResult> {
            analysis::RaceOptions options;
            options.limit = static_cast<std::size_t>(s.limit);
            // Pre-sorted: dispatch only sees canonicalized() queries.
            options.ignored_pages = s.ignored_pages;
            return QueryResult(
                RaceListResult{analysis::find_races(g, options)});
          },
          [&](const TaintQuery& s) -> Result<QueryResult> {
            if (cyclic_) return cyclic_error("taint");
            analysis::TaintOptions options;
            options.track_register_carryover = s.track_register_carryover;
            const auto taint = analysis::propagate_taint(g, s.seed_pages,
                                                         options);
            FlowResult out;
            out.sinks = analysis::tainted_sinks(g, taint, s.sink_kind);
            out.nodes = taint.tainted_nodes;
            out.pages = taint.tainted_pages;
            return QueryResult(std::move(out));
          },
          [&](const InvalidateQuery& s) -> Result<QueryResult> {
            if (cyclic_) return cyclic_error("invalidate");
            const auto inv = analysis::invalidate(g, s.changed_pages);
            FlowResult out;
            out.nodes = inv.dirty;
            out.pages = inv.dirty_pages;
            return QueryResult(std::move(out));
          },
          [&](const CriticalPathQuery&) -> Result<QueryResult> {
            if (cyclic_) return cyclic_error("critical_path");
            const auto cp = analysis::critical_path(g);
            CriticalPathResult out;
            out.nodes = cp.nodes;
            out.total_nodes = cp.total_nodes;
            return QueryResult(std::move(out));
          },
          [&](const StatsQuery&) -> Result<QueryResult> {
            return QueryResult(StatsResult{g.stats()});
          },
      },
      q);
}

Result<QueryEngine::FullOutcome> QueryEngine::execute_full(
    const Query& q, const QueryOptions& options) {
  using FullResult = Result<FullOutcome>;
  KindMetrics& metrics = kind_metrics(q);
  obs::Span span("execute");
  if (span.active()) span.annotate("kind", std::string_view(query_name(q)));
  // Children (shard loads on this thread) parent under the execute
  // span; batch phase-1 runs on pool threads with no ambient context,
  // so the span roots a fresh trace there.
  obs::ContextScope trace_scope(span.context());
  const auto started = std::chrono::steady_clock::now();
  bool cache_hit = false;
  FullResult out = [&]() -> FullResult {
    const bool cacheable = options_.cache_entries > 0 && !options.skip_cache;
    std::string key;
    try {
      const Query canonical = canonicalized(q);
      if (cacheable) {
        key = wire::cache_key(canonical);
        if (auto hit = cache_get(key)) {
          cache_hit = true;
          return FullResult(FullOutcome{std::move(hit), false});
        }
      }
      Result<Execution> computed = backend_->execute(canonical);
      if (!computed.ok()) return FullResult(computed.status());
      const bool degraded = computed->degraded;
      // Built non-const so a sole owner may later move the payload out
      // (paginate()'s unpaginated fast path); shared as pointer-to-const.
      auto value = std::make_shared<QueryResult>(
          std::move(computed.value().result));
      // A degraded answer is a view of a damaged store, not the answer:
      // caching it would keep serving the partial result even after the
      // store heals (or after healthy queries stop opting in).
      if (cacheable && !degraded) cache_put(key, value);
      return FullResult(FullOutcome{
          std::shared_ptr<const QueryResult>(std::move(value)), degraded});
    } catch (const std::exception& e) {
      return FullResult(StatusCode::kInternal,
                        std::string("unexpected exception: ") + e.what());
    } catch (...) {
      return FullResult(StatusCode::kInternal, "unexpected unknown exception");
    }
  }();
  const std::uint64_t wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  metrics.count->add();
  metrics.latency->observe(wall_us);
  if (span.active()) {
    span.annotate("cache", cache_hit ? std::string_view("hit")
                                     : std::string_view("miss"));
    if (!out.ok()) span.annotate("status", std::string_view("error"));
  }
  obs::Tracer::log_slow_query(query_name(q), wall_us,
                              out.ok() ? "ok" : "error");
  return out;
}

Result<Reply> QueryEngine::paginate(SessionId session,
                                    Result<FullOutcome> full,
                                    const QueryOptions& options) {
  if (!full.ok()) return full.status();
  const bool degraded = full->degraded;
  std::shared_ptr<const QueryResult> value = std::move(full).value().result;
  const std::uint64_t total = result_item_count(*value);
  Reply reply;
  reply.total_items = total;
  reply.degraded = degraded;
  if (options.page_size == 0 || total <= options.page_size) {
    if (value.use_count() == 1) {
      // Sole owner (cache bypassed or disabled): steal the payload
      // instead of deep-copying it. Legal: execute_full creates the
      // object non-const.
      reply.result = std::move(const_cast<QueryResult&>(*value));
    } else {
      reply.result = *value;  // copied outside the engine lock
    }
    return reply;
  }
  reply.result = result_slice(*value, 0, options.page_size);
  reply.has_more = true;
  Cursor cursor;
  cursor.full = std::move(value);
  cursor.offset = options.page_size;
  cursor.page_size = options.page_size;
  cursor.total = total;
  cursor.degraded = degraded;
  // Only the cursor registration needs the lock.
  std::lock_guard lock(mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status(StatusCode::kNotFound,
                  "unknown session " + std::to_string(session));
  }
  Session& s = it->second;
  const std::uint64_t id = s.next_cursor_id++;
  s.cursors.emplace(id, std::move(cursor));
  s.issue_order.push_back(id);
  while (s.issue_order.size() > kMaxSessionCursors) {
    s.cursors.erase(s.issue_order.front());
    s.issue_order.pop_front();
  }
  reply.cursor = id;
  return reply;
}

Result<Reply> QueryEngine::run(const Query& q, const QueryOptions& options) {
  return run(kDefaultSession, q, options);
}

Result<Reply> QueryEngine::run(SessionId session, const Query& q,
                               const QueryOptions& options) {
  // Reject unknown sessions before paying for the analysis. The
  // session can still disappear concurrently; the post-compute lookup
  // below stays authoritative.
  if (!session_exists(session)) {
    return Status(StatusCode::kNotFound,
                  "unknown session " + std::to_string(session));
  }
  return paginate(session, execute_full(q, options), options);
}

QueryEngine::Prepared QueryEngine::prepare(const Query& q,
                                           const QueryOptions& options) {
  return Prepared(execute_full(q, options), options);
}

Result<Reply> QueryEngine::finish(SessionId session, Prepared prepared) {
  if (!session_exists(session)) {
    return Status(StatusCode::kNotFound,
                  "unknown session " + std::to_string(session));
  }
  return paginate(session, std::move(prepared.full_), prepared.options_);
}

bool QueryEngine::session_exists(SessionId session) const {
  std::lock_guard lock(mu_);
  return sessions_.contains(session);
}

std::vector<Result<Reply>> QueryEngine::run_batch(
    SessionId session, std::span<const BatchItem> items) {
  if (!session_exists(session)) {
    std::vector<Result<Reply>> replies;
    replies.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      replies.emplace_back(Status(StatusCode::kNotFound,
                                  "unknown session " +
                                      std::to_string(session)));
    }
    return replies;
  }
  // Phase 1: fan the queries out over the analysis pool. Workers write
  // disjoint slots, so the full results are position-addressed and
  // order-independent; analyses underneath are themselves
  // deterministic at every worker count (and nested parallel_for calls
  // degrade to inline execution inside a chunk).
  using FullResult = Result<FullOutcome>;
  std::vector<std::optional<FullResult>> fulls(items.size());
  const auto pool = util::shared_pool();
  pool->parallel_for(0, items.size(), 1,
                     [&](std::size_t begin, std::size_t end, unsigned) {
                       for (std::size_t i = begin; i < end; ++i) {
                         fulls[i] =
                             execute_full(items[i].query, items[i].options);
                       }
                     });

  // Phase 2: serially, in request order, paginate and hand out cursor
  // ids -- the ids and page boundaries depend only on the request
  // sequence, never on the parallel schedule. Payload copies happen
  // unlocked; paginate() locks only to register a cursor.
  std::vector<Result<Reply>> replies;
  replies.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    replies.push_back(
        paginate(session, std::move(*fulls[i]), items[i].options));
  }
  return replies;
}

std::vector<Result<Reply>> QueryEngine::run_batch(
    SessionId session, std::span<const Query> queries,
    const QueryOptions& options) {
  std::vector<BatchItem> items;
  items.reserve(queries.size());
  for (const Query& q : queries) items.push_back(BatchItem{q, options});
  return run_batch(session, items);
}

Result<Reply> QueryEngine::next(SessionId session, std::uint64_t cursor) {
  // Advance the cursor state under the lock, but keep the payload
  // copy outside it (same discipline as paginate()): the shared_ptr
  // grabbed here keeps the full result alive past the drain reset.
  std::shared_ptr<const QueryResult> full;
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
  Reply reply;
  {
    std::lock_guard lock(mu_);
    const auto sit = sessions_.find(session);
    if (sit == sessions_.end()) {
      return Status(StatusCode::kNotFound,
                    "unknown session " + std::to_string(session));
    }
    Session& s = sit->second;
    const auto cit = s.cursors.find(cursor);
    if (cit == s.cursors.end()) {
      return detail::cursor_not_found_error(cursor);
    }
    Cursor& c = cit->second;
    if (c.offset >= c.total) {
      return detail::cursor_exhausted_error(cursor);
    }
    full = c.full;
    offset = c.offset;
    count = std::min(c.page_size, c.total - c.offset);
    c.offset += count;
    reply.total_items = c.total;
    reply.has_more = c.offset < c.total;
    reply.cursor = reply.has_more ? cursor : 0;
    reply.degraded = c.degraded;
    if (!reply.has_more) {
      // Keep a tombstone (so reuse answers kExhausted, not kNotFound)
      // but release the full result; the issue-order cap in
      // paginate() eventually evicts the tombstone itself.
      c.full.reset();
    }
  }
  reply.result = result_slice(*full, offset, count);
  return reply;
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  std::lock_guard lock(mu_);
  return cache_stats_;
}

std::shared_ptr<const QueryResult> QueryEngine::cache_get(
    const std::string& key) {
  static obs::Counter& hit_count =
      obs::Registry::global().counter("query_cache_hits_total");
  static obs::Counter& miss_count =
      obs::Registry::global().counter("query_cache_misses_total");
  std::lock_guard lock(mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++cache_stats_.misses;
    miss_count.add();
    return nullptr;
  }
  ++cache_stats_.hits;
  hit_count.add();
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return it->second->value;
}

void QueryEngine::cache_put(const std::string& key,
                            std::shared_ptr<const QueryResult> value) {
  std::lock_guard lock(mu_);
  if (cache_.contains(key)) return;  // a concurrent miss computed it too
  cache_lru_.push_front(CacheEntry{key, std::move(value)});
  cache_.emplace(key, cache_lru_.begin());
  static obs::Counter& eviction_count =
      obs::Registry::global().counter("query_cache_evictions_total");
  while (cache_.size() > options_.cache_entries) {
    cache_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++cache_stats_.evictions;
    eviction_count.add();
  }
}

}  // namespace inspector::query
