#include "query/wire.h"

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <limits>
#include <map>
#include <type_traits>
#include <utility>
#include <vector>

namespace inspector::query::wire {

namespace {

// --- a minimal JSON reader -------------------------------------------
//
// The wire format needs objects, arrays, strings, booleans, null, and
// *unsigned integers* -- page ids and node ids are 64-bit unsigned, and
// nothing in the protocol is fractional or negative, so any other
// number is rejected outright instead of silently truncated.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, std::uint64_t, std::string, JsonArray,
               JsonObject>
      v;
};

Status invalid(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 32;

  Result<JsonValue> error(const std::string& message) {
    return invalid(message + " (offset " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value(std::size_t depth) {
    if (depth > kMaxDepth) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return parse_string();
    if (c >= '0' && c <= '9') return parse_number();
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue{true};
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue{false};
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    if (c == '-' || c == '.') {
      return error("only unsigned integers are allowed on the wire");
    }
    return error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> parse_number() {
    std::uint64_t value = 0;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        return error("integer overflows 64 bits");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return error("expected a digit");
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return error("only unsigned integers are allowed on the wire");
    }
    return JsonValue{value};
  }

  Result<JsonValue> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return JsonValue{std::move(out)};
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return error("unterminated escape");
        switch (text_[pos_]) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            // Standard JSON \uXXXX escapes (the serializer emits them
            // for control characters, so the parser must accept
            // them). Surrogate pairs combine; lone surrogates are
            // rejected.
            ++pos_;
            std::uint32_t code = 0;
            if (!read_hex4(code)) return error("invalid \\u escape");
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return error("unpaired surrogate in \\u escape");
              }
              pos_ += 2;
              std::uint32_t low = 0;
              if (!read_hex4(low) || low < 0xDC00 || low > 0xDFFF) {
                return error("unpaired surrogate in \\u escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return error("unpaired surrogate in \\u escape");
            }
            append_utf8(out, code);
            --pos_;  // the shared ++pos_ below rebalances
            break;
          }
          default:
            return error("unsupported escape sequence");
        }
        ++pos_;
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
  }

  /// Read exactly four hex digits at pos_ into `code`, advancing past
  /// them. Returns false (without a precise pos_) on malformed input.
  bool read_hex4(std::uint32_t& code) {
    if (pos_ + 4 > text_.size()) return false;
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      code = code * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> parse_array(std::size_t depth) {
    ++pos_;  // '['
    JsonArray out;
    skip_ws();
    if (consume(']')) return JsonValue{std::move(out)};
    while (true) {
      auto element = parse_value(depth + 1);
      if (!element.ok()) return element;
      out.push_back(std::move(element).value());
      skip_ws();
      if (consume(']')) return JsonValue{std::move(out)};
      if (!consume(',')) return error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> parse_object(std::size_t depth) {
    ++pos_;  // '{'
    JsonObject out;
    skip_ws();
    if (consume('}')) return JsonValue{std::move(out)};
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return error("expected a string key");
      }
      auto key = parse_string();
      if (!key.ok()) return key;
      skip_ws();
      if (!consume(':')) return error("expected ':' after key");
      auto value = parse_value(depth + 1);
      if (!value.ok()) return value;
      const std::string& name = std::get<std::string>(key.value().v);
      if (out.contains(name)) return error("duplicate key \"" + name + "\"");
      out.emplace(name, std::move(value).value());
      skip_ws();
      if (consume('}')) return JsonValue{std::move(out)};
      if (!consume(',')) return error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- typed field extraction ------------------------------------------

const JsonValue* find(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  return it == object.end() ? nullptr : &it->second;
}

Result<std::uint64_t> require_uint(const JsonObject& object,
                                   const char* name) {
  const JsonValue* value = find(object, name);
  if (value == nullptr) {
    return invalid(std::string("missing required field \"") + name + "\"");
  }
  if (const auto* n = std::get_if<std::uint64_t>(&value->v)) return *n;
  return invalid(std::string("field \"") + name +
                 "\" must be an unsigned integer");
}

Result<std::uint64_t> optional_uint(const JsonObject& object,
                                    const char* name,
                                    std::uint64_t fallback) {
  if (find(object, name) == nullptr) return fallback;
  return require_uint(object, name);
}

Result<bool> optional_bool(const JsonObject& object, const char* name,
                           bool fallback) {
  const JsonValue* value = find(object, name);
  if (value == nullptr) return fallback;
  if (const auto* b = std::get_if<bool>(&value->v)) return *b;
  return invalid(std::string("field \"") + name + "\" must be a boolean");
}

Result<PageSet> optional_page_array(const JsonObject& object,
                                    const char* name) {
  const JsonValue* value = find(object, name);
  if (value == nullptr) return PageSet{};
  const auto* array = std::get_if<JsonArray>(&value->v);
  if (array == nullptr) {
    return invalid(std::string("field \"") + name +
                   "\" must be an array of page ids");
  }
  PageSet out;
  out.reserve(array->size());
  for (const JsonValue& element : *array) {
    const auto* page = std::get_if<std::uint64_t>(&element.v);
    if (page == nullptr) {
      return invalid(std::string("field \"") + name +
                     "\" must contain only unsigned integers");
    }
    out.push_back(*page);
  }
  return out;
}

Result<cpg::NodeId> require_node(const JsonObject& object, const char* name) {
  auto raw = require_uint(object, name);
  if (!raw.ok()) return raw.status();
  if (raw.value() > std::numeric_limits<cpg::NodeId>::max()) {
    return invalid(std::string("field \"") + name +
                   "\" exceeds the 32-bit node id range");
  }
  return static_cast<cpg::NodeId>(raw.value());
}

// --- serialization helpers -------------------------------------------

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

template <typename T>
void append_uint_array(std::string& out, const std::vector<T>& values) {
  static_assert(std::is_unsigned_v<T>);
  out.push_back('[');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
}

constexpr const char* edge_kind_name(cpg::EdgeKind kind) {
  switch (kind) {
    case cpg::EdgeKind::kControl:
      return "control";
    case cpg::EdgeKind::kSync:
      return "sync";
    case cpg::EdgeKind::kData:
      return "data";
  }
  return "control";
}

void append_payload(std::string& out, const QueryResult& result) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, NodeListResult>) {
          out += ",\"nodes\":";
          append_uint_array(out, r.nodes);
        } else if constexpr (std::is_same_v<T, EdgeListResult>) {
          out += ",\"edges\":[";
          for (std::size_t i = 0; i < r.edges.size(); ++i) {
            const cpg::Edge& e = r.edges[i];
            if (i != 0) out.push_back(',');
            out += "{\"from\":" + std::to_string(e.from) +
                   ",\"to\":" + std::to_string(e.to) + ",\"kind\":\"" +
                   edge_kind_name(e.kind) +
                   "\",\"object\":" + std::to_string(e.object) + "}";
          }
          out.push_back(']');
        } else if constexpr (std::is_same_v<T, PageAccessorsResult>) {
          out += ",\"page\":" + std::to_string(r.page) + ",\"writers\":";
          append_uint_array(out, r.writers);
          out += ",\"readers\":";
          append_uint_array(out, r.readers);
        } else if constexpr (std::is_same_v<T, HappensBeforeResult>) {
          out += ",\"ordering\":\"";
          out += to_string(r.ordering);
          out.push_back('"');
        } else if constexpr (std::is_same_v<T, RaceListResult>) {
          out += ",\"races\":[";
          for (std::size_t i = 0; i < r.races.size(); ++i) {
            const analysis::RaceReport& race = r.races[i];
            if (i != 0) out.push_back(',');
            out += "{\"first\":" + std::to_string(race.first) +
                   ",\"second\":" + std::to_string(race.second) +
                   ",\"page\":" + std::to_string(race.page) +
                   ",\"write_write\":" +
                   (race.write_write ? "true" : "false") + "}";
          }
          out.push_back(']');
        } else if constexpr (std::is_same_v<T, FlowResult>) {
          out += ",\"nodes\":";
          append_uint_array(out, r.nodes);
          out += ",\"pages\":";
          append_uint_array(out, r.pages);
          out += ",\"sinks\":";
          append_uint_array(out, r.sinks);
        } else if constexpr (std::is_same_v<T, CriticalPathResult>) {
          out += ",\"total_nodes\":" + std::to_string(r.total_nodes) +
                 ",\"nodes\":";
          append_uint_array(out, r.nodes);
        } else {
          static_assert(std::is_same_v<T, StatsResult>);
          const cpg::GraphStats& s = r.stats;
          out += ",\"stats\":{\"nodes\":" + std::to_string(s.nodes) +
                 ",\"control_edges\":" + std::to_string(s.control_edges) +
                 ",\"sync_edges\":" + std::to_string(s.sync_edges) +
                 ",\"threads\":" + std::to_string(s.threads) +
                 ",\"thunks\":" + std::to_string(s.thunks) +
                 ",\"read_pages\":" + std::to_string(s.read_pages) +
                 ",\"write_pages\":" + std::to_string(s.write_pages) + "}";
        }
      },
      result);
}

}  // namespace

Result<Request> parse_request(std::string_view line,
                              std::uint64_t* echo_id) {
  Parser parser(line);
  auto parsed = parser.parse();
  if (!parsed.ok()) return parsed.status();
  const auto* object = std::get_if<JsonObject>(&parsed.value().v);
  if (object == nullptr) {
    return invalid("a request must be a JSON object");
  }
  if (echo_id != nullptr) {
    if (const JsonValue* id_value = find(*object, "id")) {
      if (const auto* id = std::get_if<std::uint64_t>(&id_value->v)) {
        *echo_id = *id;
      }
    }
  }

  const JsonValue* op_value = find(*object, "op");
  if (op_value == nullptr) return invalid("missing required field \"op\"");
  const auto* op = std::get_if<std::string>(&op_value->v);
  if (op == nullptr) return invalid("field \"op\" must be a string");

  Request request;
  if (auto id = optional_uint(*object, "id", 0); id.ok()) {
    request.id = id.value();
  } else {
    return id.status();
  }
  if (auto page_size = optional_uint(*object, "page_size", 0);
      page_size.ok()) {
    request.page_size = page_size.value();
  } else {
    return page_size.status();
  }

  // Every op accepts the envelope fields; anything else is per-op.
  const auto check = [&](std::initializer_list<const char*> extra) {
    std::vector<const char*> allowed = {"id", "op", "page_size"};
    allowed.insert(allowed.end(), extra.begin(), extra.end());
    for (const auto& [key, value] : *object) {
      const bool known =
          std::any_of(allowed.begin(), allowed.end(),
                      [&](const char* name) { return key == name; });
      if (!known) {
        return invalid("unknown field \"" + key + "\" for op \"" + *op +
                       "\"");
      }
    }
    return Status::Ok();
  };

  // Scalar-reply ops never paginate, so an explicit "page_size" would
  // be silently ignored -- reject it like any other ineffective field
  // (the same policy "next" applies below).
  const auto reject_page_size = [&](const char* why) {
    if (find(*object, "page_size") != nullptr) {
      return invalid(std::string("field \"page_size\" is not allowed for op "
                                 "\"") +
                     *op + "\" (" + why + ")");
    }
    return Status::Ok();
  };

  const auto node_query = [&](auto make) -> Result<Request> {
    if (auto st = check({"node"}); !st.ok()) return st;
    auto node = require_node(*object, "node");
    if (!node.ok()) return node.status();
    request.op = Query(make(node.value()));
    return request;
  };

  if (*op == "backward_slice") {
    return node_query([](cpg::NodeId n) { return BackwardSliceQuery{n}; });
  }
  if (*op == "forward_slice") {
    return node_query([](cpg::NodeId n) { return ForwardSliceQuery{n}; });
  }
  if (*op == "latest_writers") {
    return node_query([](cpg::NodeId n) { return LatestWritersQuery{n}; });
  }
  if (*op == "data_dependencies") {
    return node_query([](cpg::NodeId n) { return DataDependenciesQuery{n}; });
  }
  if (*op == "page_accessors") {
    if (auto st = check({"page"}); !st.ok()) return st;
    auto page = require_uint(*object, "page");
    if (!page.ok()) return page.status();
    request.op = Query(PageAccessorsQuery{page.value()});
    return request;
  }
  if (*op == "happens_before") {
    if (auto st = check({"first", "second"}); !st.ok()) return st;
    if (auto st = reject_page_size("the reply is a single ordering and "
                                   "never paginates");
        !st.ok()) {
      return st;
    }
    auto first = require_node(*object, "first");
    if (!first.ok()) return first.status();
    auto second = require_node(*object, "second");
    if (!second.ok()) return second.status();
    request.op = Query(HappensBeforeQuery{first.value(), second.value()});
    return request;
  }
  if (*op == "races") {
    if (auto st = check({"limit", "ignored_pages"}); !st.ok()) return st;
    RacesQuery q;
    if (auto limit = optional_uint(*object, "limit", 0); limit.ok()) {
      q.limit = limit.value();
    } else {
      return limit.status();
    }
    auto ignored = optional_page_array(*object, "ignored_pages");
    if (!ignored.ok()) return ignored.status();
    q.ignored_pages = std::move(ignored).value();
    request.op = Query(std::move(q));
    return request;
  }
  if (*op == "taint") {
    if (auto st = check({"seed_pages", "carryover", "sink_kind"}); !st.ok()) {
      return st;
    }
    TaintQuery q;
    auto seeds = optional_page_array(*object, "seed_pages");
    if (!seeds.ok()) return seeds.status();
    q.seed_pages = std::move(seeds).value();
    auto carry = optional_bool(*object, "carryover", true);
    if (!carry.ok()) return carry.status();
    q.track_register_carryover = carry.value();
    auto sink = optional_uint(
        *object, "sink_kind",
        static_cast<std::uint64_t>(sync::SyncEventKind::kThreadExit));
    if (!sink.ok()) return sink.status();
    if (sink.value() >
        static_cast<std::uint64_t>(sync::SyncEventKind::kThreadJoin)) {
      return invalid("field \"sink_kind\" must be a SyncEventKind in [0, " +
                     std::to_string(static_cast<unsigned>(
                         sync::SyncEventKind::kThreadJoin)) +
                     "]");
    }
    q.sink_kind = static_cast<sync::SyncEventKind>(sink.value());
    request.op = Query(std::move(q));
    return request;
  }
  if (*op == "invalidate") {
    if (auto st = check({"changed_pages"}); !st.ok()) return st;
    InvalidateQuery q;
    auto changed = optional_page_array(*object, "changed_pages");
    if (!changed.ok()) return changed.status();
    q.changed_pages = std::move(changed).value();
    request.op = Query(std::move(q));
    return request;
  }
  if (*op == "critical_path") {
    if (auto st = check({}); !st.ok()) return st;
    request.op = Query(CriticalPathQuery{});
    return request;
  }
  if (*op == "stats") {
    if (auto st = check({}); !st.ok()) return st;
    if (auto st = reject_page_size("the reply is a single statistics "
                                   "object and never paginates");
        !st.ok()) {
      return st;
    }
    request.op = Query(StatsQuery{});
    return request;
  }
  if (*op == "metrics") {
    if (auto st = check({}); !st.ok()) return st;
    if (auto st = reject_page_size("the reply is a single metrics "
                                   "snapshot and never paginates");
        !st.ok()) {
      return st;
    }
    request.op = MetricsRequest{};
    return request;
  }
  if (*op == "next") {
    if (auto st = check({"cursor"}); !st.ok()) return st;
    // page_size is envelope-level for queries, but a cursor's page
    // size is fixed at creation.
    if (auto st = reject_page_size("the page size is fixed when the "
                                   "cursor is created");
        !st.ok()) {
      return st;
    }
    auto cursor = require_uint(*object, "cursor");
    if (!cursor.ok()) return cursor.status();
    request.op = NextRequest{cursor.value()};
    return request;
  }
  return invalid("unknown op \"" + *op + "\"");
}

std::string serialize_query(const Query& q) {
  std::string out = "{\"op\":\"";
  out += query_name(q);
  out.push_back('"');
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, BackwardSliceQuery> ||
                      std::is_same_v<T, ForwardSliceQuery> ||
                      std::is_same_v<T, LatestWritersQuery> ||
                      std::is_same_v<T, DataDependenciesQuery>) {
          out += ",\"node\":" + std::to_string(v.node);
        } else if constexpr (std::is_same_v<T, PageAccessorsQuery>) {
          out += ",\"page\":" + std::to_string(v.page);
        } else if constexpr (std::is_same_v<T, HappensBeforeQuery>) {
          out += ",\"first\":" + std::to_string(v.first) +
                 ",\"second\":" + std::to_string(v.second);
        } else if constexpr (std::is_same_v<T, RacesQuery>) {
          out += ",\"limit\":" + std::to_string(v.limit) +
                 ",\"ignored_pages\":";
          append_uint_array(out, v.ignored_pages);
        } else if constexpr (std::is_same_v<T, TaintQuery>) {
          out += ",\"seed_pages\":";
          append_uint_array(out, v.seed_pages);
          out += ",\"carryover\":";
          out += v.track_register_carryover ? "true" : "false";
          out += ",\"sink_kind\":" +
                 std::to_string(static_cast<unsigned>(v.sink_kind));
        } else if constexpr (std::is_same_v<T, InvalidateQuery>) {
          out += ",\"changed_pages\":";
          append_uint_array(out, v.changed_pages);
        } else {
          static_assert(std::is_same_v<T, CriticalPathQuery> ||
                        std::is_same_v<T, StatsQuery>);
        }
      },
      q);
  out.push_back('}');
  return out;
}

std::string serialize_reply(std::uint64_t id, const Result<Reply>& reply) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"status\":\"";
  if (!reply.ok()) {
    out += to_string(reply.status().code());
    out += "\",\"error\":";
    append_escaped(out, reply.status().message());
    out.push_back('}');
    return out;
  }
  const Reply& r = reply.value();
  out += "ok\",";
  // Only damaged-store partial answers carry the marker, so replies
  // from a healthy store stay byte-identical to before it existed.
  if (r.degraded) out += "\"degraded\":true,";
  out += "\"total_items\":" + std::to_string(r.total_items) +
         ",\"has_more\":";
  out += r.has_more ? "true" : "false";
  if (r.cursor != 0) out += ",\"cursor\":" + std::to_string(r.cursor);
  append_payload(out, r.result);
  out.push_back('}');
  return out;
}

std::string serialize_metrics_reply(std::uint64_t id,
                                    std::string_view metrics_json) {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"status\":\"ok\",\"metrics\":";
  out += metrics_json;
  out.push_back('}');
  return out;
}

}  // namespace inspector::query::wire
