// Line-delimited JSON wire format for the provenance query API.
//
// One request per line in, one reply per line out -- the protocol the
// inspector_query serving front-end speaks over stdin/stdout, and the
// canonical textual form the engine uses as its cache key. The parser
// is strict: unknown operations, unknown fields, missing required
// fields, and non-integer numbers all come back as kInvalidArgument
// (never an exception), so a malformed client request is just another
// typed error on the wire.
//
// Requests:
//   {"id":1,"op":"backward_slice","node":5,"page_size":100}
//   {"id":2,"op":"page_accessors","page":12}
//   {"id":3,"op":"happens_before","first":1,"second":2}
//   {"id":4,"op":"races","limit":20,"ignored_pages":[7]}
//   {"id":5,"op":"taint","seed_pages":[1,2],"carryover":true,"sink_kind":10}
//   {"id":6,"op":"invalidate","changed_pages":[3]}
//   {"id":7,"op":"critical_path"}
//   {"id":8,"op":"stats"}
//   {"id":9,"op":"next","cursor":1}
//
// Replies (field order is fixed; integers only, so replies are
// byte-stable across platforms):
//   {"id":1,"status":"ok","total_items":40,"has_more":true,"cursor":1,
//    "nodes":[...]}
//   {"id":9,"status":"exhausted","error":"cursor 1 is exhausted"}
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "query/query.h"
#include "query/status.h"

namespace inspector::query::wire {

/// Cursor fetch ("op":"next").
struct NextRequest {
  std::uint64_t cursor = 0;
};

/// Introspection ("op":"metrics"): a snapshot of the serving process's
/// metrics registry. Answered locally by whichever process receives it
/// (a router answers with its own registry, not its workers').
struct MetricsRequest {};

/// A parsed request line.
struct Request {
  std::uint64_t id = 0;  ///< client-chosen, echoed in the reply
  std::uint64_t page_size = 0;  ///< 0 = unpaginated
  std::variant<Query, NextRequest, MetricsRequest> op;
};

/// Parse one request line. kInvalidArgument with a precise message on
/// anything malformed. When `echo_id` is non-null it receives the
/// request's "id" whenever one could be read -- even for requests that
/// fail later checks -- so error replies still reach the right caller.
[[nodiscard]] Result<Request> parse_request(std::string_view line,
                                            std::uint64_t* echo_id = nullptr);

/// Canonical single-line JSON encoding of a query: stable field order,
/// every field present. Doubles as the engine's cache key.
[[nodiscard]] std::string serialize_query(const Query& q);
[[nodiscard]] inline std::string cache_key(const Query& q) {
  return serialize_query(q);
}

/// One reply line (no trailing newline). Errors serialize the status
/// name and message; successes serialize the paginated payload.
[[nodiscard]] std::string serialize_reply(std::uint64_t id,
                                          const Result<Reply>& reply);

/// Reply line for a MetricsRequest: `metrics_json` (one JSON object,
/// e.g. obs::to_json of a registry snapshot) embedded verbatim.
[[nodiscard]] std::string serialize_metrics_reply(
    std::uint64_t id, std::string_view metrics_json);

}  // namespace inspector::query::wire
