// The typed request/response surface of the provenance query API.
//
// Everything an analyst can ask of a captured run -- the slicing,
// dependence, race, DIFT, and incremental-invalidation queries the
// paper's case studies run over the CPG -- is one Query variant in,
// one QueryResult variant out. The engine (engine.h) executes them
// over an immutable graph snapshot; the wire layer (wire.h) gives the
// same surface a line-delimited JSON form for the serving front-end.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "analysis/races.h"
#include "cpg/graph.h"
#include "cpg/node.h"
#include "sync/sync_event.h"
#include "util/page_set.h"

namespace inspector::query {

// --- requests ---------------------------------------------------------

/// Backward provenance slice from one node ("why is the state like
/// this" -- §VIII debugging).
struct BackwardSliceQuery {
  cpg::NodeId node = cpg::kInvalidNode;
};

/// Forward impact slice from one node (change propagation).
struct ForwardSliceQuery {
  cpg::NodeId node = cpg::kInvalidNode;
};

/// Latest happens-before writer per page the node reads (the dataflow
/// edge set a slice follows).
struct LatestWritersQuery {
  cpg::NodeId node = cpg::kInvalidNode;
};

/// All update-use dependencies of one reader node.
struct DataDependenciesQuery {
  cpg::NodeId node = cpg::kInvalidNode;
};

/// Writers and readers of one page, in rank order.
struct PageAccessorsQuery {
  std::uint64_t page = 0;
};

/// The happens-before relation between two nodes.
struct HappensBeforeQuery {
  cpg::NodeId first = cpg::kInvalidNode;
  cpg::NodeId second = cpg::kInvalidNode;
};

/// Conflicting concurrent pairs (the race detector).
struct RacesQuery {
  /// Report at most this many races (0 = unlimited).
  std::uint64_t limit = 0;
  PageSet ignored_pages;
};

/// DIFT: propagate taint from seed pages, report tainted nodes/pages
/// and the tainted output sites.
struct TaintQuery {
  PageSet seed_pages;
  bool track_register_carryover = true;
  /// Which end-reason counts as an output site for the sinks list.
  sync::SyncEventKind sink_kind = sync::SyncEventKind::kThreadExit;
};

/// Incremental invalidation: which nodes must re-run when these input
/// pages changed.
struct InvalidateQuery {
  PageSet changed_pages;
};

/// Longest dependency chain and available parallelism.
struct CriticalPathQuery {};

/// Aggregate graph statistics.
struct StatsQuery {};

using Query =
    std::variant<BackwardSliceQuery, ForwardSliceQuery, LatestWritersQuery,
                 DataDependenciesQuery, PageAccessorsQuery,
                 HappensBeforeQuery, RacesQuery, TaintQuery, InvalidateQuery,
                 CriticalPathQuery, StatsQuery>;

/// Stable wire/operation name of a query ("backward_slice", "races",
/// ...). Also the prefix of the engine's cache keys.
[[nodiscard]] const char* query_name(const Query& q) noexcept;

// --- responses --------------------------------------------------------

/// Slices: node ids ascending.
struct NodeListResult {
  std::vector<cpg::NodeId> nodes;

  bool operator==(const NodeListResult&) const = default;
};

/// Latest writers / data dependencies: derived data edges.
struct EdgeListResult {
  std::vector<cpg::Edge> edges;

  bool operator==(const EdgeListResult&) const = default;
};

struct PageAccessorsResult {
  std::uint64_t page = 0;
  std::vector<cpg::NodeId> writers;  ///< rank order
  std::vector<cpg::NodeId> readers;  ///< rank order

  bool operator==(const PageAccessorsResult&) const = default;
};

enum class Ordering : std::uint8_t {
  kBefore,      ///< first happens-before second
  kAfter,       ///< second happens-before first
  kConcurrent,  ///< incomparable vector clocks
  kEqual,       ///< the same node
};

[[nodiscard]] constexpr const char* to_string(Ordering o) noexcept {
  switch (o) {
    case Ordering::kBefore:
      return "before";
    case Ordering::kAfter:
      return "after";
    case Ordering::kConcurrent:
      return "concurrent";
    case Ordering::kEqual:
      return "equal";
  }
  return "concurrent";
}

struct HappensBeforeResult {
  Ordering ordering = Ordering::kConcurrent;

  bool operator==(const HappensBeforeResult&) const = default;
};

struct RaceListResult {
  std::vector<analysis::RaceReport> races;

  bool operator==(const RaceListResult&) const = default;
};

/// Taint and invalidation share this shape: the marked nodes, the
/// marked pages (seeds included), and -- for taint -- the tainted
/// output sites.
struct FlowResult {
  std::vector<cpg::NodeId> nodes;  ///< ascending id
  PageSet pages;
  std::vector<cpg::NodeId> sinks;  ///< taint only; empty for invalidate

  bool operator==(const FlowResult&) const = default;
};

struct CriticalPathResult {
  std::vector<cpg::NodeId> nodes;  ///< one longest chain, execution order
  std::uint64_t total_nodes = 0;

  [[nodiscard]] std::uint64_t length() const noexcept { return nodes.size(); }
  [[nodiscard]] double parallelism() const noexcept {
    return nodes.empty() ? 0.0
                         : static_cast<double>(total_nodes) /
                               static_cast<double>(nodes.size());
  }

  bool operator==(const CriticalPathResult&) const = default;
};

struct StatsResult {
  cpg::GraphStats stats;

  bool operator==(const StatsResult&) const = default;
};

using QueryResult =
    std::variant<NodeListResult, EdgeListResult, PageAccessorsResult,
                 HappensBeforeResult, RaceListResult, FlowResult,
                 CriticalPathResult, StatsResult>;

// --- pagination -------------------------------------------------------

/// Per-call knobs.
struct QueryOptions {
  /// 0 = return the whole answer in one reply. Otherwise list-shaped
  /// results are cut into pages of at most `page_size` items and a
  /// cursor is issued for the rest. The item space of a result is the
  /// concatenation of its lists in declaration order (e.g. a
  /// PageAccessorsResult's writers then readers), so a page boundary
  /// may fall between two lists; scalar results ignore pagination.
  std::uint64_t page_size = 0;
  /// Bypass the engine's result cache (the answer is still correct;
  /// this only forces recomputation).
  bool skip_cache = false;
};

/// One page of an answer. `result` holds at most page_size items;
/// `cursor` is nonzero while more pages remain and feeds
/// QueryEngine::next().
struct Reply {
  QueryResult result;
  std::uint64_t total_items = 0;  ///< item count of the full answer
  std::uint64_t cursor = 0;       ///< 0 = complete
  bool has_more = false;
  /// The backend skipped quarantined shards (opt-in degraded mode):
  /// the answer is a partial view of a damaged store, not the exact
  /// answer a healthy store would give. Serialized on the wire as
  /// "degraded":true; never set on replies from a healthy store.
  bool degraded = false;
};

/// Total item count of a full result (the paginated unit).
[[nodiscard]] std::uint64_t result_item_count(const QueryResult& result);

/// Items [offset, offset+count) of `full`, with scalar fields copied
/// through. Used by the engine's cursor machinery; exposed for tests.
[[nodiscard]] QueryResult result_slice(const QueryResult& full,
                                       std::uint64_t offset,
                                       std::uint64_t count);

}  // namespace inspector::query
