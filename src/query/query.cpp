#include "query/query.h"

#include <algorithm>
#include <type_traits>

#include "query/overloaded.h"

namespace inspector::query {

namespace {

using detail::Overloaded;

/// Consume items of `v` from the concatenated item space: `offset`
/// skips, `count` limits; both are reduced by what this list used, so
/// chained calls walk a multi-list result in declaration order.
template <typename T>
std::vector<T> take(const std::vector<T>& v, std::uint64_t& offset,
                    std::uint64_t& count) {
  std::vector<T> out;
  const std::uint64_t n = v.size();
  if (offset >= n) {
    offset -= n;
    return out;
  }
  const auto first = static_cast<std::ptrdiff_t>(offset);
  const std::uint64_t taken = std::min(count, n - offset);
  out.assign(v.begin() + first,
             v.begin() + first + static_cast<std::ptrdiff_t>(taken));
  offset = 0;
  count -= taken;
  return out;
}

}  // namespace

const char* query_name(const Query& q) noexcept {
  return std::visit(
      [](const auto& v) -> const char* {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, BackwardSliceQuery>) {
          return "backward_slice";
        } else if constexpr (std::is_same_v<T, ForwardSliceQuery>) {
          return "forward_slice";
        } else if constexpr (std::is_same_v<T, LatestWritersQuery>) {
          return "latest_writers";
        } else if constexpr (std::is_same_v<T, DataDependenciesQuery>) {
          return "data_dependencies";
        } else if constexpr (std::is_same_v<T, PageAccessorsQuery>) {
          return "page_accessors";
        } else if constexpr (std::is_same_v<T, HappensBeforeQuery>) {
          return "happens_before";
        } else if constexpr (std::is_same_v<T, RacesQuery>) {
          return "races";
        } else if constexpr (std::is_same_v<T, TaintQuery>) {
          return "taint";
        } else if constexpr (std::is_same_v<T, InvalidateQuery>) {
          return "invalidate";
        } else if constexpr (std::is_same_v<T, CriticalPathQuery>) {
          return "critical_path";
        } else {
          static_assert(std::is_same_v<T, StatsQuery>);
          return "stats";
        }
      },
      q);
}

std::uint64_t result_item_count(const QueryResult& result) {
  return std::visit(
      Overloaded{
          [](const NodeListResult& r) -> std::uint64_t {
            return r.nodes.size();
          },
          [](const EdgeListResult& r) -> std::uint64_t {
            return r.edges.size();
          },
          [](const PageAccessorsResult& r) -> std::uint64_t {
            return r.writers.size() + r.readers.size();
          },
          [](const HappensBeforeResult&) -> std::uint64_t { return 1; },
          [](const RaceListResult& r) -> std::uint64_t {
            return r.races.size();
          },
          [](const FlowResult& r) -> std::uint64_t {
            return r.nodes.size() + r.pages.size() + r.sinks.size();
          },
          [](const CriticalPathResult& r) -> std::uint64_t {
            return r.nodes.size();
          },
          [](const StatsResult&) -> std::uint64_t { return 1; },
      },
      result);
}

QueryResult result_slice(const QueryResult& full, std::uint64_t offset,
                         std::uint64_t count) {
  return std::visit(
      Overloaded{
          [&](const NodeListResult& r) -> QueryResult {
            return NodeListResult{take(r.nodes, offset, count)};
          },
          [&](const EdgeListResult& r) -> QueryResult {
            return EdgeListResult{take(r.edges, offset, count)};
          },
          [&](const PageAccessorsResult& r) -> QueryResult {
            PageAccessorsResult out;
            out.page = r.page;
            out.writers = take(r.writers, offset, count);
            out.readers = take(r.readers, offset, count);
            return out;
          },
          [&](const HappensBeforeResult& r) -> QueryResult { return r; },
          [&](const RaceListResult& r) -> QueryResult {
            return RaceListResult{take(r.races, offset, count)};
          },
          [&](const FlowResult& r) -> QueryResult {
            FlowResult out;
            out.nodes = take(r.nodes, offset, count);
            out.pages = take(r.pages, offset, count);
            out.sinks = take(r.sinks, offset, count);
            return out;
          },
          [&](const CriticalPathResult& r) -> QueryResult {
            CriticalPathResult out;
            out.total_nodes = r.total_nodes;
            out.nodes = take(r.nodes, offset, count);
            return out;
          },
          [&](const StatsResult& r) -> QueryResult { return r; },
      },
      full);
}

}  // namespace inspector::query
