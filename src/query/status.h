// Error model of the provenance query API.
//
// The Status/Result vocabulary moved to util/status.h (the sharded
// on-disk store needs it below the query layer); this header keeps the
// historical inspector::query spellings working for every existing
// caller. See util/status.h for the semantics of each code.
#pragma once

#include "util/status.h"

namespace inspector::query {

using inspector::Result;
using inspector::Status;
using inspector::StatusCode;
using inspector::to_string;

}  // namespace inspector::query
