// QueryEngine -- the one front door to the provenance analyses.
//
// An engine wraps a QueryBackend -- usually an immutable cpg::Graph
// snapshot (shared_ptr, so a serving process can hot-swap snapshots
// while in-flight queries keep theirs), alternatively the out-of-core
// sharded store -- and executes Query variants against it: validation
// up front, typed Status instead of exceptions, a per-engine result
// cache, and batched fan-out over the shared util::TaskPool with the
// analysis runtime's determinism contract -- run_batch() output,
// including cursor page boundaries, is bit-identical at every worker
// count and at every backend.
//
// Sessions scope cursors: each session has its own cursor id space,
// ids are handed out in request order (deterministic), and closing a
// session drops its cursors. The result cache is engine-wide and
// shared by all sessions.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpg/graph.h"
#include "query/query.h"
#include "query/status.h"

namespace inspector::query {

struct EngineOptions {
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t cache_entries = 128;
};

/// A backend's full, unpaginated answer. `degraded` is set only by
/// backends that (on explicit opt-in) skipped quarantined shards: the
/// result is then a partial view, and the engine neither caches it nor
/// lets it masquerade as a complete reply on the wire.
struct Execution {
  QueryResult result;
  bool degraded = false;
};

/// Where the answers come from. The engine owns everything
/// backend-independent -- canonicalization, the result cache, sessions,
/// cursors, pagination, batched fan-out -- and delegates the actual
/// analysis to a backend: the in-memory graph (GraphQueryBackend) or
/// the out-of-core sharded store (shard::ShardBackend). Backends must
/// return the exact same QueryResult payloads and Status messages for
/// the same graph, so a reply stream never reveals which backend
/// served it.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Validate + execute one canonicalized query (page-set fields
  /// sorted/deduplicated) to its full, unpaginated result. Must be
  /// safe to call concurrently. May throw on infrastructure failures
  /// (e.g. shard file IO); the engine converts escapes to kInternal.
  [[nodiscard]] virtual Result<Execution> execute(const Query& q) const = 0;
};

/// The classic backend: every query answered from one immutable
/// in-memory cpg::Graph snapshot.
class GraphQueryBackend final : public QueryBackend {
 public:
  explicit GraphQueryBackend(std::shared_ptr<const cpg::Graph> graph);

  [[nodiscard]] Result<Execution> execute(const Query& q) const override;

  [[nodiscard]] const cpg::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::shared_ptr<const cpg::Graph> snapshot() const noexcept {
    return graph_;
  }

 private:
  [[nodiscard]] Result<QueryResult> run_query(const Query& q) const;

  std::shared_ptr<const cpg::Graph> graph_;
  bool cyclic_ = false;  ///< detected once at construction
};

namespace detail {
/// Shared error constructors: every backend must produce these exact
/// messages so replies are backend-independent byte for byte.
[[nodiscard]] Status node_range_error(cpg::NodeId id, std::size_t count);
[[nodiscard]] Status untouched_page_error(std::uint64_t page);
[[nodiscard]] Status cyclic_error(const char* what);
/// Cursor lifecycle errors, shared with the serving router: when the
/// router rewrites a worker-local cursor id into its own id space it
/// must synthesize the exact bytes the engine would have produced.
[[nodiscard]] Status cursor_not_found_error(std::uint64_t cursor);
[[nodiscard]] Status cursor_exhausted_error(std::uint64_t cursor);
}  // namespace detail

class QueryEngine {
 public:
  using Options = EngineOptions;

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  using SessionId = std::uint64_t;
  /// Always open; cursors of callers that never open_session() live
  /// here.
  static constexpr SessionId kDefaultSession = 0;

 private:
  /// A full result plus its degraded marker (shared_ptr so cursors and
  /// the cache alias one payload; degraded results are never cached).
  struct FullOutcome {
    std::shared_ptr<const QueryResult> result;
    bool degraded = false;
  };

 public:
  /// The two-phase form of run(), for callers that overlap many
  /// queries but need cursor ids handed out in request order (the
  /// socket dispatcher): prepare() does the heavy analysis and may run
  /// concurrently; finish() cuts the first page and registers the
  /// cursor, and must be called serially in the order replies are
  /// owed. run() == finish(session, prepare(q, options)).
  class Prepared {
   public:
    Prepared(Prepared&&) = default;
    Prepared(const Prepared&) = default;
    Prepared& operator=(Prepared&&) = default;
    Prepared& operator=(const Prepared&) = default;

   private:
    friend class QueryEngine;
    Prepared(Result<FullOutcome> full, QueryOptions options)
        : full_(std::move(full)), options_(options) {}

    Result<FullOutcome> full_;
    QueryOptions options_;
  };

  explicit QueryEngine(std::shared_ptr<const cpg::Graph> graph,
                       Options options = Options());
  /// Serve from an arbitrary backend (the sharded store). graph() and
  /// snapshot() are unavailable on such engines.
  explicit QueryEngine(std::shared_ptr<const QueryBackend> backend,
                       Options options = Options());

  virtual ~QueryEngine() = default;
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The in-memory snapshot, for graph-backed engines only; throws
  /// std::logic_error on a backend-constructed engine (use the backend
  /// you constructed it with instead).
  [[nodiscard]] const cpg::Graph& graph() const;
  [[nodiscard]] std::shared_ptr<const cpg::Graph> snapshot() const;

  /// Open an isolated cursor namespace. Never fails.
  [[nodiscard]] SessionId open_session();
  /// Drop a session and its cursors. kNotFound for unknown ids;
  /// the default session cannot be closed (kInvalidArgument).
  Status close_session(SessionId session);

  /// Execute one query. On success the Reply holds the first (or only)
  /// page; errors come back as Status, never exceptions.
  [[nodiscard]] Result<Reply> run(const Query& q,
                                  const QueryOptions& options = {});
  [[nodiscard]] Result<Reply> run(SessionId session, const Query& q,
                                  const QueryOptions& options = {});

  /// Phase 1: validate + execute to the full result (cache-aware,
  /// safe to call concurrently). Never touches session state.
  [[nodiscard]] Prepared prepare(const Query& q,
                                 const QueryOptions& options = {});
  /// Phase 2: paginate a prepared result and (if it spans pages)
  /// register its cursor with `session`. Call in request order.
  [[nodiscard]] Result<Reply> finish(SessionId session, Prepared prepared);

  /// One batch entry: a query plus its own pagination/cache knobs.
  struct BatchItem {
    Query query;
    QueryOptions options;
  };

  /// Execute a batch: queries fan out over the shared analysis pool,
  /// replies come back in request order with per-query statuses (a bad
  /// query never poisons its neighbours). Cursor ids are assigned in
  /// request order after the parallel phase, so the full reply
  /// sequence -- page contents and boundaries included -- is
  /// bit-identical at every worker count.
  [[nodiscard]] std::vector<Result<Reply>> run_batch(
      SessionId session, std::span<const BatchItem> items);
  /// Convenience: the same options for every query.
  [[nodiscard]] std::vector<Result<Reply>> run_batch(
      SessionId session, std::span<const Query> queries,
      const QueryOptions& options = {});

  /// Fetch the next page of a cursor issued by this session.
  /// kNotFound for a cursor this session never issued, kExhausted once
  /// every page has been consumed (the cursor stays addressable until
  /// its session closes).
  [[nodiscard]] Result<Reply> next(SessionId session, std::uint64_t cursor);
  [[nodiscard]] Result<Reply> next(std::uint64_t cursor) {
    return next(kDefaultSession, cursor);
  }

  [[nodiscard]] CacheStats cache_stats() const;

 private:
  struct Cursor {
    std::shared_ptr<const QueryResult> full;  ///< null once drained
    std::uint64_t offset = 0;
    std::uint64_t page_size = 0;
    std::uint64_t total = 0;
    bool degraded = false;  ///< every page inherits the marker
  };
  struct Session {
    std::uint64_t next_cursor_id = 1;
    std::unordered_map<std::uint64_t, Cursor> cursors;
    /// Cursor ids in issue order. A long-lived serving session must
    /// not grow without bound -- neither via abandoned live cursors
    /// (each pins its full result) nor via drained tombstones -- so
    /// past kMaxSessionCursors the oldest cursors are evicted
    /// outright; their ids then answer kNotFound like never-issued
    /// ids. Drained cursors stay as payload-free tombstones (reuse
    /// answers kExhausted) until evicted by the same cap.
    std::deque<std::uint64_t> issue_order;
  };
  static constexpr std::size_t kMaxSessionCursors = 1024;

  /// Validate + execute one query to its full (unpaginated) result.
  [[nodiscard]] Result<FullOutcome> execute_full(const Query& q,
                                                 const QueryOptions& options);

  /// Cut the first page (payload copies happen outside the engine
  /// lock; only cursor registration locks). Called serially in request
  /// order, so cursor ids are deterministic.
  [[nodiscard]] Result<Reply> paginate(SessionId session,
                                       Result<FullOutcome> full,
                                       const QueryOptions& options);

  [[nodiscard]] bool session_exists(SessionId session) const;

  [[nodiscard]] std::shared_ptr<const QueryResult> cache_get(
      const std::string& key);
  void cache_put(const std::string& key,
                 std::shared_ptr<const QueryResult> value);

  std::shared_ptr<const QueryBackend> backend_;
  Options options_;

  mutable std::mutex mu_;  ///< guards sessions_ and the cache
  std::unordered_map<SessionId, Session> sessions_;
  SessionId next_session_id_ = 1;

  // LRU result cache: list front = most recent; map values point into
  // the list.
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const QueryResult> value;
  };
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
  CacheStats cache_stats_;
};

}  // namespace inspector::query
