// Internal helper for visiting the Query/QueryResult variants.
#pragma once

namespace inspector::query::detail {

template <typename... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <typename... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace inspector::query::detail
