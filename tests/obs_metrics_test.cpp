// Concurrency and rendering contract of the metrics registry
// (src/obs/metrics.h): many writer threads hammer one counter /
// gauge / histogram while reader threads take snapshots, and every
// snapshot a reader sees must be monotone (counters and histogram
// counts never decrease between successive snapshots) with the final
// quiesced values exact. Run under TSan in CI -- the registry's whole
// point is relaxed-atomic hot paths that are still race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace {

using namespace inspector::obs;

constexpr int kWriters = 8;  // CI asserts TSan-clean at >= 4 threads
constexpr std::uint64_t kOpsPerWriter = 20000;

/// The histogram series in `snap` named `name` (count 0 if absent).
Histogram::Snapshot find_histogram(const MetricsSnapshot& snap,
                                   const std::string& name) {
  for (const auto& s : snap.series) {
    if (s.name == name && s.kind == SeriesSnapshot::Kind::kHistogram) {
      return s.histogram;
    }
  }
  return {};
}

std::uint64_t find_counter(const MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& s : snap.series) {
    if (s.name == name && s.kind == SeriesSnapshot::Kind::kCounter) {
      return s.counter_value;
    }
  }
  return 0;
}

TEST(ObsMetrics, ConcurrentWritersWithSnapshotReaders) {
  Registry registry;
  Counter& counter = registry.counter("test_ops_total");
  Gauge& gauge = registry.gauge("test_level");
  Histogram& histogram = registry.histogram("test_latency_us");

  std::atomic<bool> stop{false};
  std::atomic<int> monotonicity_violations{0};

  // Two concurrent readers: each asserts its own snapshot sequence is
  // monotone while the writers are mid-flight.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_counter = 0;
      std::uint64_t last_hist_count = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const MetricsSnapshot snap = registry.snapshot();
        const std::uint64_t c = find_counter(snap, "test_ops_total");
        const Histogram::Snapshot h =
            find_histogram(snap, "test_latency_us");
        if (c < last_counter || h.count < last_hist_count) {
          monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_counter = c;
        last_hist_count = h.count;
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        counter.add();
        gauge.set(static_cast<std::int64_t>(w * kOpsPerWriter + i));
        histogram.observe(i % 1000);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(monotonicity_violations.load(), 0);

  // Writers quiesced: totals are exact, not approximate.
  constexpr std::uint64_t kTotal = kWriters * kOpsPerWriter;
  EXPECT_EQ(counter.value(), kTotal);
  const Histogram::Snapshot h = histogram.snapshot();
  EXPECT_EQ(h.count, kTotal);
  std::uint64_t want_sum = 0;
  for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) want_sum += i % 1000;
  EXPECT_EQ(h.sum, want_sum * kWriters);
  // The gauge high-water mark is the largest value any writer set.
  EXPECT_EQ(gauge.max_value(), kWriters * kOpsPerWriter - 1);
}

TEST(ObsMetrics, SameNameReturnsSameSeries) {
  Registry registry;
  Counter& a = registry.counter("dup_total");
  Counter& b = registry.counter("dup_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);

  Histogram& ha = registry.histogram("dup_us");
  Histogram& hb = registry.histogram("dup_us");
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles) {
  Histogram h;
  // 90 fast observations and 10 slow ones: p50 lands in the fast
  // bucket, p99 in the slow one. Bounds are conservative (<=).
  for (int i = 0; i < 90; ++i) h.observe(3);    // bucket bound 4
  for (int i = 0; i < 10; ++i) h.observe(900);  // bucket bound 1024
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u * 3 + 10u * 900);
  EXPECT_EQ(s.percentile(0.50), 4u);
  EXPECT_EQ(s.percentile(0.99), 1024u);
  EXPECT_EQ(s.percentile(0.0), 4u);  // rank floors at 1
}

TEST(ObsMetrics, GaugeTracksLevelAndHighWater) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 15);
  g.add(-7);
  EXPECT_EQ(g.value(), -5);
  EXPECT_EQ(g.max_value(), 15);
}

TEST(ObsMetrics, PrometheusRenderingComposesEmbeddedLabels) {
  Registry registry;
  registry.counter("plain_total").add(2);
  registry.gauge("level").set(-3);
  registry.histogram("latency_us{kind=\"races\"}").observe(3);

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("plain_total 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("level -3\n"), std::string::npos) << text;
  // The embedded label pair merges with the le label on buckets and
  // stays alone on _sum/_count.
  EXPECT_NE(text.find("latency_us_bucket{kind=\"races\",le=\"4\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{kind=\"races\",le=\"+Inf\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_sum{kind=\"races\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_count{kind=\"races\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(ObsMetrics, JsonSnapshotGroupsByKind) {
  Registry registry;
  registry.counter("c_total").add(5);
  registry.gauge("g").set(7);
  Histogram& h = registry.histogram("h_us");
  h.observe(100);
  h.observe(200);

  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"counters\":{\"c_total\":5}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":7}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h_us\":{\"count\":2,\"sum\":300"),
            std::string::npos)
      << json;
}

}  // namespace
