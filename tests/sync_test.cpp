// SyncManager tests: the blocking semantics of the full pthreads
// synchronization surface (§III).
#include <gtest/gtest.h>

#include "sync/sync_manager.h"

namespace {

using namespace inspector::sync;

constexpr ObjectId kM = make_object_id(ObjectKind::kMutex, 1);
constexpr ObjectId kM2 = make_object_id(ObjectKind::kMutex, 2);
constexpr ObjectId kS = make_object_id(ObjectKind::kSemaphore, 1);
constexpr ObjectId kB = make_object_id(ObjectKind::kBarrier, 1);
constexpr ObjectId kCv = make_object_id(ObjectKind::kCondVar, 1);

TEST(ObjectId, RoundTripsKindAndIndex) {
  const ObjectId id = make_object_id(ObjectKind::kSemaphore, 0xABCDEF);
  EXPECT_EQ(object_kind(id), ObjectKind::kSemaphore);
  EXPECT_EQ(object_index(id), 0xABCDEFu);
  EXPECT_EQ(object_kind(thread_lifecycle_object(7)),
            ObjectKind::kThreadLifecycle);
}

TEST(Mutex, UncontendedLockUnlock) {
  SyncManager sm;
  EXPECT_TRUE(sm.mutex_lock(1, kM).acquired);
  EXPECT_EQ(sm.mutex_owner(kM), 1u);
  const auto wake = sm.mutex_unlock(1, kM);
  EXPECT_TRUE(wake.woken.empty());
  EXPECT_EQ(sm.mutex_owner(kM), std::nullopt);
}

TEST(Mutex, ContendedFifoHandoff) {
  SyncManager sm;
  ASSERT_TRUE(sm.mutex_lock(1, kM).acquired);
  EXPECT_FALSE(sm.mutex_lock(2, kM).acquired);
  EXPECT_FALSE(sm.mutex_lock(3, kM).acquired);
  EXPECT_EQ(sm.waiters_on(kM), 2u);

  auto wake = sm.mutex_unlock(1, kM);
  ASSERT_EQ(wake.woken, (std::vector<ThreadId>{2}));
  EXPECT_EQ(sm.mutex_owner(kM), 2u) << "direct handoff to head waiter";

  wake = sm.mutex_unlock(2, kM);
  EXPECT_EQ(wake.woken, (std::vector<ThreadId>{3}));
  EXPECT_EQ(sm.mutex_owner(kM), 3u);
}

TEST(Mutex, UnlockByNonOwnerThrows) {
  SyncManager sm;
  ASSERT_TRUE(sm.mutex_lock(1, kM).acquired);
  EXPECT_THROW((void)sm.mutex_unlock(2, kM), SyncError);
  EXPECT_THROW((void)sm.mutex_unlock(1, kM2), SyncError);
}

TEST(Mutex, RelockByOwnerThrows) {
  SyncManager sm;
  ASSERT_TRUE(sm.mutex_lock(1, kM).acquired);
  EXPECT_THROW((void)sm.mutex_lock(1, kM), SyncError);
}

TEST(Semaphore, CountsDownAndBlocks) {
  SyncManager sm;
  sm.sem_init(kS, 2);
  EXPECT_TRUE(sm.sem_wait(1, kS).acquired);
  EXPECT_TRUE(sm.sem_wait(2, kS).acquired);
  EXPECT_FALSE(sm.sem_wait(3, kS).acquired);
  EXPECT_EQ(sm.sem_value(kS), 0u);
}

TEST(Semaphore, PostTransfersToWaiter) {
  SyncManager sm;
  sm.sem_init(kS, 0);
  EXPECT_FALSE(sm.sem_wait(1, kS).acquired);
  const auto wake = sm.sem_post(2, kS);
  EXPECT_EQ(wake.woken, (std::vector<ThreadId>{1}));
  EXPECT_EQ(sm.sem_value(kS), 0u) << "post consumed by the waiter";
}

TEST(Semaphore, PostWithoutWaitersIncrements) {
  SyncManager sm;
  sm.sem_init(kS, 0);
  EXPECT_TRUE(sm.sem_post(1, kS).woken.empty());
  EXPECT_EQ(sm.sem_value(kS), 1u);
  EXPECT_TRUE(sm.sem_wait(2, kS).acquired);
}

TEST(Barrier, ReleasesWhenFull) {
  SyncManager sm;
  sm.barrier_init(kB, 3);
  EXPECT_FALSE(sm.barrier_wait(1, kB).released);
  EXPECT_FALSE(sm.barrier_wait(2, kB).released);
  const auto res = sm.barrier_wait(3, kB);
  ASSERT_TRUE(res.released);
  EXPECT_EQ(res.participants, (std::vector<ThreadId>{1, 2, 3}));
}

TEST(Barrier, ResetsForNextGeneration) {
  SyncManager sm;
  sm.barrier_init(kB, 2);
  (void)sm.barrier_wait(1, kB);
  ASSERT_TRUE(sm.barrier_wait(2, kB).released);
  // Second generation works identically.
  EXPECT_FALSE(sm.barrier_wait(2, kB).released);
  const auto res = sm.barrier_wait(1, kB);
  ASSERT_TRUE(res.released);
  EXPECT_EQ(res.participants, (std::vector<ThreadId>{2, 1}));
}

TEST(Barrier, UninitializedOrZeroPartiesThrows) {
  SyncManager sm;
  EXPECT_THROW((void)sm.barrier_wait(1, kB), SyncError);
  EXPECT_THROW(sm.barrier_init(kB, 0), SyncError);
}

TEST(CondVar, WaitReleasesMutex) {
  SyncManager sm;
  ASSERT_TRUE(sm.mutex_lock(1, kM).acquired);
  EXPECT_FALSE(sm.mutex_lock(2, kM).acquired);
  // Thread 1 waits: mutex hands off to thread 2.
  const auto wake = sm.cond_wait(1, kCv, kM);
  EXPECT_EQ(wake.woken, (std::vector<ThreadId>{2}));
  EXPECT_EQ(sm.mutex_owner(kM), 2u);
  EXPECT_EQ(sm.waiters_on(kCv), 1u);
}

TEST(CondVar, WaitWithoutMutexThrows) {
  SyncManager sm;
  EXPECT_THROW((void)sm.cond_wait(1, kCv, kM), SyncError);
}

TEST(CondVar, SignalWakesOneInFifoOrder) {
  SyncManager sm;
  for (ThreadId t : {1u, 2u, 3u}) {
    ASSERT_TRUE(sm.mutex_lock(t, kM).acquired);
    (void)sm.cond_wait(t, kCv, kM);
  }
  EXPECT_EQ(sm.cond_signal(kCv).woken, (std::vector<ThreadId>{1}));
  EXPECT_EQ(sm.cond_signal(kCv).woken, (std::vector<ThreadId>{2}));
  EXPECT_EQ(sm.waiters_on(kCv), 1u);
}

TEST(CondVar, BroadcastWakesAll) {
  SyncManager sm;
  for (ThreadId t : {1u, 2u, 3u}) {
    ASSERT_TRUE(sm.mutex_lock(t, kM).acquired);
    (void)sm.cond_wait(t, kCv, kM);
  }
  EXPECT_EQ(sm.cond_broadcast(kCv).woken, (std::vector<ThreadId>{1, 2, 3}));
  EXPECT_EQ(sm.waiters_on(kCv), 0u);
}

TEST(CondVar, SignalWithNoWaitersIsNoop) {
  SyncManager sm;
  EXPECT_TRUE(sm.cond_signal(kCv).woken.empty());
  EXPECT_TRUE(sm.cond_broadcast(kCv).woken.empty());
}

}  // namespace
