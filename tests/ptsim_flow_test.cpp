// Flow-decoder tests: reconstructing control flow from packets + image
// (the libipt-style layer of §V-B).
#include <gtest/gtest.h>

#include <random>

#include "ptsim/encoder.h"
#include "ptsim/flow.h"
#include "ptsim/image.h"
#include "ptsim/sink.h"

namespace {

using namespace inspector::ptsim;

// A tiny image:
//   0x1000: cond branch -> taken 0x1040 / fall 0x1020
//   0x1020: pad, jumps to 0x1040
//   0x1040: indirect
//   0x1060: exit
Image tiny_image() {
  Image img;
  img.add_segment({"tiny.text", 0x1000, 0x100});
  img.add_block({0x1000, 0x20, 3, TermKind::kCondBranch, 0x1040, 0x1020});
  img.add_block({0x1020, 0x20, 1, TermKind::kJump, 0x1040, 0});
  img.add_block({0x1040, 0x20, 2, TermKind::kIndirect, 0, 0});
  img.add_block({0x1060, 0x20, 1, TermKind::kExit, 0, 0});
  return img;
}

TEST(Image, BlockLookup) {
  const Image img = tiny_image();
  ASSERT_NE(img.block_at(0x1000), nullptr);
  EXPECT_EQ(img.block_at(0x1001), nullptr);
  const BasicBlock* mid = img.block_containing(0x1005);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->start, 0x1000u);
  EXPECT_EQ(img.block_containing(0x0FFF), nullptr);
  EXPECT_EQ(img.block_containing(0x1080), nullptr);
  EXPECT_EQ(img.block_count(), 4u);
}

TEST(Image, RejectsOverlaps) {
  Image img = tiny_image();
  EXPECT_THROW(img.add_block({0x1010, 0x20, 1, TermKind::kJump, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(img.add_block({0x0FF0, 0x20, 1, TermKind::kJump, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(img.add_block({0x2000, 0, 1, TermKind::kJump, 0, 0}),
               std::invalid_argument);
}

TEST(Flow, TakenPathSkipsPad) {
  const Image img = tiny_image();
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_conditional(true);    // 0x1000 -> 0x1040
  enc.on_indirect(0x1060);     // 0x1040 -> exit block
  enc.on_disable();

  FlowDecoder dec(img, sink.data());
  const FlowResult result = dec.run();
  ASSERT_EQ(result.events.size(), 4u);
  EXPECT_EQ(result.events[0].kind, BranchEvent::Kind::kEnable);
  EXPECT_EQ(result.events[1].kind, BranchEvent::Kind::kConditional);
  EXPECT_TRUE(result.events[1].taken);
  EXPECT_EQ(result.events[1].target, 0x1040u);
  EXPECT_EQ(result.events[2].kind, BranchEvent::Kind::kIndirect);
  EXPECT_EQ(result.events[2].target, 0x1060u);
  EXPECT_EQ(result.events[3].kind, BranchEvent::Kind::kDisable);
  // Blocks: 0x1000, 0x1040, 0x1060 (pad skipped on the taken path).
  EXPECT_EQ(result.blocks_executed, 3u);
  EXPECT_EQ(result.instructions_retired, 3u + 2u + 1u);
}

TEST(Flow, NotTakenPathWalksPad) {
  const Image img = tiny_image();
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_conditional(false);   // -> 0x1020 (pad) -> jump -> 0x1040
  enc.on_indirect(0x1060);
  enc.on_disable();

  FlowDecoder dec(img, sink.data());
  const FlowResult result = dec.run();
  EXPECT_EQ(result.blocks_executed, 4u);  // pad block included
  ASSERT_GE(result.events.size(), 2u);
  EXPECT_FALSE(result.events[1].taken);
  EXPECT_EQ(result.events[1].target, 0x1020u);
}

TEST(Flow, OverflowGapResumesAtFup) {
  const Image img = tiny_image();
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_conditional(true);
  // Overflow: some execution is lost; trace resumes at the indirect
  // block.
  enc.on_overflow(0x1040);
  enc.on_indirect(0x1060);
  enc.on_disable();

  FlowDecoder dec(img, sink.data());
  const FlowResult result = dec.run();
  EXPECT_EQ(result.gaps, 1u);
  bool seen_gap = false;
  for (const auto& e : result.events) {
    if (e.kind == BranchEvent::Kind::kGap) {
      seen_gap = true;
      EXPECT_EQ(e.target, 0x1040u);
    }
  }
  EXPECT_TRUE(seen_gap);
}

TEST(Flow, UncoveredIpThrows) {
  const Image img = tiny_image();
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x9000);  // not in the image
  enc.on_conditional(true);
  enc.flush();
  FlowDecoder dec(img, sink.data());
  EXPECT_THROW((void)dec.run(), DecodeError);
}

TEST(Flow, EmptyTraceYieldsNoEvents) {
  const Image img = tiny_image();
  std::vector<std::uint8_t> empty;
  FlowDecoder dec(img, empty);
  const FlowResult result = dec.run();
  EXPECT_TRUE(result.events.empty());
  EXPECT_EQ(result.blocks_executed, 0u);
}

// Chain image for longer round trips: N cond blocks, each taken ->
// next, not-taken -> pad -> next, final exit.
Image chain_image(int n) {
  Image img;
  std::uint64_t addr = 0x10000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t pad = addr + 0x10;
    const std::uint64_t next = addr + 0x20;
    img.add_block({addr, 0x10, 2, TermKind::kCondBranch, next, pad});
    img.add_block({pad, 0x10, 1, TermKind::kJump, next, 0});
    addr = next;
  }
  img.add_block({addr, 0x10, 1, TermKind::kExit, 0, 0});
  return img;
}

class FlowChainTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowChainTest, LongChainsRoundTripAnyPattern) {
  const int n = 300;
  const Image img = chain_image(n);
  std::mt19937_64 rng(GetParam());
  std::vector<bool> pattern;
  for (int i = 0; i < n; ++i) pattern.push_back((rng() & 1) != 0);

  VectorSink sink;
  EncoderOptions opts;
  opts.psb_period_bytes = 128;
  PacketEncoder enc(sink, opts);
  enc.on_enable(0x10000);
  for (bool taken : pattern) enc.on_conditional(taken);
  enc.on_disable();

  FlowDecoder dec(img, sink.data());
  const FlowResult result = dec.run();
  std::vector<bool> decoded;
  for (const auto& e : result.events) {
    if (e.kind == BranchEvent::Kind::kConditional) {
      decoded.push_back(e.taken);
    }
  }
  EXPECT_EQ(decoded, pattern);
  EXPECT_EQ(result.gaps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowChainTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
