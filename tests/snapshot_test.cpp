// Snapshot-facility tests: consistent cuts and the 4MB-slot ring (§VI).
#include <gtest/gtest.h>

#include "cpg/recorder.h"
#include "snapshot/consistent_cut.h"
#include "snapshot/ring.h"

namespace {

using namespace inspector::cpg;
using namespace inspector::snapshot;
namespace sync = inspector::sync;

using inspector::PageSet;
constexpr sync::ObjectId kM = sync::make_object_id(sync::ObjectKind::kMutex, 1);

Graph two_thread_graph() {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.thread_started(1, 0);
  rec.end_subcomputation(0, PageSet{1}, PageSet{2},
                         {sync::SyncEventKind::kMutexUnlock, kM});
  rec.on_release(0, kM);
  rec.record_schedule_event(0, kM, sync::SyncEventKind::kMutexUnlock);
  rec.on_acquire(1, kM);
  rec.record_schedule_event(1, kM, sync::SyncEventKind::kMutexLock);
  rec.end_subcomputation(1, PageSet{2}, PageSet{},
                         {sync::SyncEventKind::kMutexLock, kM});
  rec.thread_exiting(0, PageSet{}, PageSet{});
  rec.thread_exiting(1, PageSet{}, PageSet{});
  return std::move(rec).finalize();
}

TEST(ConsistentCut, FullScheduleIsConsistent) {
  const Graph g = two_thread_graph();
  EXPECT_TRUE(is_consistent(g.schedule(), Cut{~0ull}));
  EXPECT_TRUE(is_consistent(g.schedule(), Cut{0}));
}

TEST(ConsistentCut, AcquireWithoutReleaseIsInconsistent) {
  // Hand-craft a schedule where the acquire precedes its release in
  // sequence order (an impossible recording -- the checker must flag
  // any cut containing the acquire but not the release).
  std::vector<sync::SyncEvent> schedule = {
      {1, 0, kM, sync::SyncEventKind::kMutexUnlock},  // release at seq 1
      {2, 1, kM, sync::SyncEventKind::kMutexLock},    // acquire at seq 2
      {3, 0, kM, sync::SyncEventKind::kMutexUnlock},  // release at seq 3
      {4, 1, kM, sync::SyncEventKind::kMutexLock},    // acquire at seq 4
  };
  EXPECT_TRUE(is_consistent(schedule, Cut{2}));
  EXPECT_TRUE(is_consistent(schedule, Cut{4}));
  // Swap so the acquire's matching release falls outside the cut.
  std::vector<sync::SyncEvent> bad = {
      {1, 0, kM, sync::SyncEventKind::kMutexUnlock},
      {3, 1, kM, sync::SyncEventKind::kMutexLock},  // acquire inside cut 3
      {2, 0, kM, sync::SyncEventKind::kMutexUnlock},  // release seq 2 BUT
  };
  // Reorder stream so the matching release (latest before the acquire)
  // has seq > cut: release seq 4 comes before acquire seq 3 in stream.
  std::vector<sync::SyncEvent> tricky = {
      {4, 0, kM, sync::SyncEventKind::kMutexUnlock},
      {3, 1, kM, sync::SyncEventKind::kMutexLock},
  };
  EXPECT_FALSE(is_consistent(tricky, Cut{3}));
  (void)bad;
}

TEST(ConsistentCut, PrefixSnapshotsAreCausallyClosed) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.thread_started(1, 0);
  rec.end_subcomputation(0, PageSet{}, PageSet{1},
                         {sync::SyncEventKind::kMutexUnlock, kM});
  rec.on_release(0, kM);
  const Cut mid{rec.sequence()};
  rec.on_acquire(1, kM);
  rec.end_subcomputation(1, PageSet{1}, PageSet{},
                         {sync::SyncEventKind::kMutexLock, kM});
  rec.thread_exiting(0, PageSet{}, PageSet{});
  rec.thread_exiting(1, PageSet{}, PageSet{});

  const Graph snap = rec.snapshot_prefix(mid.seq);
  const Graph full = std::move(rec).finalize();
  EXPECT_TRUE(is_causally_closed(full, snap));
  EXPECT_TRUE(is_causally_closed(full, full));
}

TEST(ConsistentCut, DetectsNonClosedSubgraph) {
  const Graph full = two_thread_graph();
  // A "snapshot" containing only the acquiring node (T1[0]) violates
  // closure: its sync-edge source T0[0] is missing.
  std::vector<SubComputation> nodes;
  for (const auto& n : full.nodes()) {
    if (n.thread == 1 && n.alpha == 0) {
      SubComputation copy = n;
      copy.id = 0;
      nodes.push_back(copy);
    }
  }
  ASSERT_EQ(nodes.size(), 1u);
  const Graph bogus(std::move(nodes), {}, {});
  EXPECT_FALSE(is_causally_closed(full, bogus));
}

TEST(SnapshotRing, StoreAndConsumeRoundTrips) {
  SnapshotRing ring(4);
  const Graph g = two_thread_graph();
  ASSERT_TRUE(ring.store(g));
  EXPECT_EQ(ring.occupied(), 1u);
  const auto back = ring.consume();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nodes().size(), g.nodes().size());
  EXPECT_EQ(back->edges(), g.edges());
  EXPECT_EQ(ring.occupied(), 0u);
  EXPECT_FALSE(ring.consume().has_value());
}

TEST(SnapshotRing, EvictsOldestWhenFull) {
  SnapshotRing ring(2);
  const Graph g = two_thread_graph();
  ASSERT_TRUE(ring.store(g));
  ASSERT_TRUE(ring.store(g));
  ASSERT_TRUE(ring.store(g));  // evicts the first
  EXPECT_EQ(ring.occupied(), 2u);
  EXPECT_EQ(ring.stats().stored, 3u);
  EXPECT_EQ(ring.stats().evicted, 1u);
}

TEST(SnapshotRing, RejectsOversizedSnapshot) {
  SnapshotRing ring(2, /*slot_bytes=*/16);  // absurdly small slot
  const Graph g = two_thread_graph();
  EXPECT_FALSE(ring.store(g));
  EXPECT_EQ(ring.stats().rejected, 1u);
  EXPECT_EQ(ring.occupied(), 0u);
}

TEST(SnapshotRing, TracksCompression) {
  SnapshotRing ring(4);
  ASSERT_TRUE(ring.store(two_thread_graph()));
  EXPECT_GT(ring.stats().bytes_uncompressed, 0u);
  EXPECT_GT(ring.stats().bytes_compressed, 0u);
  EXPECT_LE(ring.stats().bytes_compressed, ring.stats().bytes_uncompressed);
}

TEST(SnapshotRing, ZeroSlotsRejected) {
  EXPECT_THROW(SnapshotRing(0), std::invalid_argument);
}

}  // namespace
