// perf-layer tests: cgroup inheritance, per-process trace streams,
// side-band records, drain/overflow plumbing (§V-B).
#include <gtest/gtest.h>

#include "perf/session.h"

namespace {

using namespace inspector::perf;

TEST(Cgroup, ChildrenInheritMembership) {
  Cgroup cg("inspector");
  cg.add(1);
  EXPECT_TRUE(cg.on_fork(1, 2));
  EXPECT_TRUE(cg.on_fork(2, 3)) << "grandchildren inherit too";
  EXPECT_FALSE(cg.on_fork(99, 100)) << "outsiders' children stay outside";
  EXPECT_TRUE(cg.contains(3));
  EXPECT_FALSE(cg.contains(100));
  EXPECT_EQ(cg.size(), 3u);
  cg.on_exit(2);
  EXPECT_FALSE(cg.contains(2));
}

TEST(PerfSession, TracksOnlyCgroupMembers) {
  PerfSession session("inspector");
  session.attach_root(1, 0);
  session.on_fork(1, 2, 10);
  session.on_fork(50, 51, 20);  // unrelated process tree
  EXPECT_NE(session.encoder_for(1), nullptr);
  EXPECT_NE(session.encoder_for(2), nullptr);
  EXPECT_EQ(session.encoder_for(51), nullptr)
      << "the cgroup filter excludes foreign pids";
  EXPECT_EQ(session.traced_pids().size(), 2u);
}

TEST(PerfSession, SidebandRecordsInOrder) {
  PerfSession session("inspector");
  session.attach_root(1, 0);
  session.on_mmap(1, 0x7F0000000000, 1 << 20, "input.txt", 5);
  session.on_fork(1, 2, 10);
  session.on_exit(2, 20);
  const auto& records = session.records();
  ASSERT_GE(records.size(), 5u);
  EXPECT_EQ(records[0].type, RecordType::kComm);
  EXPECT_EQ(records[1].type, RecordType::kItraceStart);
  EXPECT_EQ(records[2].type, RecordType::kMmap);
  EXPECT_EQ(records[2].name, "input.txt");
  bool fork_seen = false;
  for (const auto& r : records) {
    if (r.type == RecordType::kFork) {
      EXPECT_EQ(r.pid, 2u);
      EXPECT_EQ(r.parent, 1u);
      fork_seen = true;
    }
  }
  EXPECT_TRUE(fork_seen);
}

TEST(PerfSession, DrainCollectsAuxData) {
  PerfSession session("inspector");
  session.attach_root(1, 0);
  auto* enc = session.encoder_for(1);
  ASSERT_NE(enc, nullptr);
  enc->on_enable(0x1000);
  for (int i = 0; i < 50; ++i) enc->on_conditional(true);
  enc->flush();
  session.drain(100);
  EXPECT_GT(session.total_trace_bytes(), 0u);
  EXPECT_FALSE(session.trace_for(1).empty());
  bool aux_seen = false;
  for (const auto& r : session.records()) {
    if (r.type == RecordType::kAux) aux_seen = true;
  }
  EXPECT_TRUE(aux_seen);
}

TEST(PerfSession, OverflowEmitsTruncatedRecord) {
  SessionOptions options;
  options.aux_bytes = 64;  // tiny AUX area
  PerfSession session("inspector", options);
  session.attach_root(1, 0);
  auto* enc = session.encoder_for(1);
  enc->on_enable(0x1000);
  for (int i = 0; i < 1000; ++i) enc->on_conditional(i % 2 == 0);
  enc->flush();
  session.drain(50);
  EXPECT_GT(session.overflow_count(), 0u);
  bool truncated = false;
  for (const auto& r : session.records()) {
    if (r.type == RecordType::kAuxTruncated) truncated = true;
  }
  EXPECT_TRUE(truncated);
}

TEST(PerfSession, PerProcessStreamsAreIndependent) {
  PerfSession session("inspector");
  session.attach_root(1, 0);
  session.on_fork(1, 2, 1);
  auto* e1 = session.encoder_for(1);
  auto* e2 = session.encoder_for(2);
  e1->on_enable(0x1000);
  e2->on_enable(0x2000);
  e1->on_conditional(true);
  e2->on_indirect(0x3000);
  e1->flush();
  e2->flush();
  session.drain(10);
  EXPECT_NE(session.trace_for(1), session.trace_for(2));
  EXPECT_EQ(e1->stats().tip_packets, 0u);
  EXPECT_EQ(e2->stats().tip_packets, 1u);
}

}  // namespace
