// MMU-tracking tests: fault-driven read/write sets, COW privacy, twin
// diffs, last-writer-wins commits, and the RC visibility rules (§V-A).
#include <gtest/gtest.h>

#include "memtrack/allocator.h"
#include "memtrack/shared_memory.h"
#include "memtrack/thread_memory.h"

namespace {

using namespace inspector::memtrack;
using inspector::page_set_contains;

TEST(SharedMemory, ZeroFilledOnFirstUse) {
  SharedMemory shm;
  EXPECT_EQ(shm.read_word(0x1000), 0u);
  EXPECT_EQ(shm.resident_pages(), 0u) << "reads must not materialize pages";
  shm.write_word(0x1000, 42);
  EXPECT_EQ(shm.resident_pages(), 1u);
  EXPECT_EQ(shm.read_word(0x1000), 42u);
}

TEST(SharedMemory, PageIdsSorted) {
  SharedMemory shm;
  shm.write_word(0x5000, 1);
  shm.write_word(0x1000, 1);
  shm.write_word(0x3000, 1);
  EXPECT_EQ(shm.page_ids(), (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(SharedMemory, ByteAccessors) {
  SharedMemory shm;
  shm.write_byte(0x2001, 0xAB);
  EXPECT_EQ(shm.read_byte(0x2001), 0xAB);
  EXPECT_EQ(shm.read_byte(0x2002), 0x00);
}

class ThreadMemoryTest : public ::testing::Test {
 protected:
  SharedMemory shm_;
};

TEST_F(ThreadMemoryTest, FirstReadFaultsOncePerPage) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  (void)tm.read_word(0x1000);
  (void)tm.read_word(0x1008);  // same page: no second fault
  (void)tm.read_word(0x2000);  // new page: faults
  EXPECT_EQ(tm.stats().read_faults, 2u);
  EXPECT_EQ(tm.read_set().size(), 2u);
  EXPECT_TRUE(page_set_contains(tm.read_set(), 1u));
  EXPECT_TRUE(page_set_contains(tm.read_set(), 2u));
}

TEST_F(ThreadMemoryTest, WriteAfterReadUpgrades) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  (void)tm.read_word(0x1000);
  tm.write_word(0x1000, 7);
  EXPECT_EQ(tm.stats().read_faults, 1u);
  EXPECT_EQ(tm.stats().write_faults, 1u);
  EXPECT_TRUE(page_set_contains(tm.read_set(), 1u));
  EXPECT_TRUE(page_set_contains(tm.write_set(), 1u));
}

TEST_F(ThreadMemoryTest, ReadAfterWriteDoesNotFault) {
  // A written page is mapped read-write: the read cannot trap, so it is
  // only in the write set (mirrors the real mprotect scheme).
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  tm.write_word(0x1000, 7);
  (void)tm.read_word(0x1000);
  EXPECT_EQ(tm.stats().read_faults, 0u);
  EXPECT_FALSE(page_set_contains(tm.read_set(), 1u));
}

TEST_F(ThreadMemoryTest, ReprotectAtSubcomputationBoundary) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  (void)tm.read_word(0x1000);
  (void)tm.commit();
  tm.begin_subcomputation();
  (void)tm.read_word(0x1000);  // faults again after re-protection
  EXPECT_EQ(tm.stats().read_faults, 2u);
  EXPECT_EQ(tm.stats().subcomputations, 2u);
}

TEST_F(ThreadMemoryTest, WritesInvisibleUntilCommit) {
  ThreadMemory writer(shm_);
  ThreadMemory reader(shm_);
  writer.begin_subcomputation();
  reader.begin_subcomputation();

  writer.write_word(0x1000, 99);
  EXPECT_EQ(reader.read_word(0x1000), 0u) << "RC: no visibility before sync";
  EXPECT_EQ(shm_.read_word(0x1000), 0u);

  (void)writer.commit();
  EXPECT_EQ(shm_.read_word(0x1000), 99u);
  // The reader's private copy was snapshotted pre-commit; a new
  // sub-computation (new acquire) sees the update.
  reader.begin_subcomputation();
  EXPECT_EQ(reader.read_word(0x1000), 99u);
}

TEST_F(ThreadMemoryTest, CommitReportsDiffedBytes) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  tm.write_word(0x1000, 0x01);          // 1 byte changes (little-endian)
  tm.write_word(0x1100, 0x0102030405ull);  // 5 bytes change
  const CommitResult result = tm.commit();
  EXPECT_EQ(result.dirty_pages, 1u);
  EXPECT_EQ(result.bytes_changed, 6u);
}

TEST_F(ThreadMemoryTest, RedundantWriteProducesNoDiff) {
  shm_.write_word(0x1000, 42);
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  tm.write_word(0x1000, 42);  // same value as shared
  const CommitResult result = tm.commit();
  EXPECT_EQ(result.dirty_pages, 1u);
  EXPECT_EQ(result.bytes_changed, 0u) << "twin diff suppresses no-op writes";
}

TEST_F(ThreadMemoryTest, DisjointWritesToSamePageMerge) {
  // Two threads dirty different words of the same page; both updates
  // must survive (the diff applies only changed bytes).
  ThreadMemory a(shm_);
  ThreadMemory b(shm_);
  a.begin_subcomputation();
  b.begin_subcomputation();
  a.write_word(0x1000, 1);
  b.write_word(0x1008, 2);
  (void)a.commit();
  (void)b.commit();
  EXPECT_EQ(shm_.read_word(0x1000), 1u);
  EXPECT_EQ(shm_.read_word(0x1008), 2u);
}

TEST_F(ThreadMemoryTest, OverlappingWritesLastCommitterWins) {
  ThreadMemory a(shm_);
  ThreadMemory b(shm_);
  a.begin_subcomputation();
  b.begin_subcomputation();
  a.write_word(0x1000, 111);
  b.write_word(0x1000, 222);
  (void)a.commit();
  (void)b.commit();
  EXPECT_EQ(shm_.read_word(0x1000), 222u) << "last-writer-wins (§V-A)";
}

TEST_F(ThreadMemoryTest, CommitDropsPrivatePages) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  tm.write_word(0x1000, 5);
  EXPECT_EQ(tm.private_pages(), 1u);
  (void)tm.commit();
  EXPECT_EQ(tm.private_pages(), 0u);
}

TEST_F(ThreadMemoryTest, OwnWritesPersistAcrossSubcomputations) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  tm.write_word(0x1000, 77);
  (void)tm.commit();
  tm.begin_subcomputation();
  EXPECT_EQ(tm.read_word(0x1000), 77u);
}

TEST_F(ThreadMemoryTest, PageFaultTotals) {
  ThreadMemory tm(shm_);
  tm.begin_subcomputation();
  (void)tm.read_word(0x1000);
  tm.write_word(0x2000, 1);
  tm.write_word(0x1000, 2);
  EXPECT_EQ(tm.stats().page_faults(), 3u);  // 1 read + 2 write
}

// --- allocator ---------------------------------------------------------

TEST(BumpAllocator, AlignsAndAdvances) {
  BumpAllocator alloc(0x1000, 0x1000);
  const auto a = alloc.allocate(5);
  const auto b = alloc.allocate(8);
  EXPECT_EQ(a, 0x1000u);
  EXPECT_EQ(b, 0x1008u) << "5 rounds to 8";
  EXPECT_EQ(alloc.allocations(), 2u);
  EXPECT_EQ(alloc.bytes_allocated(), 16u);
}

TEST(BumpAllocator, PageAlignSpreadsPages) {
  BumpAllocator alloc(AddressLayout::kHeapBase, 1 << 20);
  const auto a = alloc.allocate(16);
  alloc.align_to_page();
  const auto b = alloc.allocate(16);
  EXPECT_NE(page_id_of(a), page_id_of(b));
}

TEST(BumpAllocator, ExhaustionThrows) {
  BumpAllocator alloc(0x1000, 16);
  (void)alloc.allocate(16);
  EXPECT_THROW((void)alloc.allocate(1), std::bad_alloc);
}

TEST(BumpAllocator, ZeroSizeAllocationsAreDistinct) {
  BumpAllocator alloc(0x1000, 0x100);
  const auto a = alloc.allocate(0);
  const auto b = alloc.allocate(0);
  EXPECT_NE(a, b);
}

TEST(Regions, ClassifyAddresses) {
  EXPECT_EQ(region_of(AddressLayout::kCodeBase + 8), Region::kCode);
  EXPECT_EQ(region_of(AddressLayout::kGlobalsBase + 8), Region::kGlobals);
  EXPECT_EQ(region_of(AddressLayout::kHeapBase + 8), Region::kHeap);
  EXPECT_EQ(region_of(AddressLayout::kInputBase + 8), Region::kInput);
  EXPECT_EQ(region_of(0x10), Region::kOther);
}

}  // namespace
