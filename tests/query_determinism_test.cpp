// Determinism of the query engine across worker counts.
//
// run_batch() fans queries out over the shared analysis pool; the
// PR-2 contract extends to the query layer: the full serialized reply
// stream -- per-query statuses, payload bytes, cursor ids, and cursor
// page boundaries -- must be bit-identical at 1 and 8 workers. Same
// fixtures as tests/parallel_determinism_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "history_fixtures.h"
#include "query/engine.h"
#include "query/wire.h"
#include "util/parallel.h"

namespace {

using namespace inspector;
using namespace inspector::query;
namespace fixtures = inspector::fixtures;
namespace util = inspector::util;

/// One mixed batch -- paginated list queries, scalar queries, and
/// deliberately invalid requests -- followed by a full drain of every
/// cursor, all serialized to wire bytes.
std::string serialized_session(const cpg::Graph& source) {
  auto snapshot = std::make_shared<const cpg::Graph>(source);
  QueryEngine engine(std::move(snapshot));
  const auto last =
      static_cast<cpg::NodeId>(engine.graph().nodes().size() - 1);
  const std::uint64_t first_page =
      engine.graph().page_count() > 0 ? engine.graph().pages()[0] : 0;

  const auto paged = [](Query q, std::uint64_t page_size) {
    QueryOptions options;
    options.page_size = page_size;
    return QueryEngine::BatchItem{std::move(q), options};
  };
  const std::vector<QueryEngine::BatchItem> items = {
      paged(BackwardSliceQuery{last}, 7),
      paged(ForwardSliceQuery{0}, 5),
      paged(RacesQuery{}, 13),
      paged(TaintQuery{{0, 3, 7}, true}, 9),
      paged(InvalidateQuery{{0, 3, 7}}, 11),
      paged(CriticalPathQuery{}, 6),
      {StatsQuery{}, {}},
      {HappensBeforeQuery{0, last}, {}},
      paged(PageAccessorsQuery{first_page}, 4),
      paged(LatestWritersQuery{last}, 3),
      paged(DataDependenciesQuery{last}, 3),
      {BackwardSliceQuery{static_cast<cpg::NodeId>(1u << 30)}, {}},  // error
      {PageAccessorsQuery{0xDEADBEEF}, {}},                          // error
  };
  const auto replies =
      engine.run_batch(QueryEngine::kDefaultSession, items);

  std::string out;
  std::uint64_t id = 1;
  std::vector<std::uint64_t> cursors;
  for (const auto& reply : replies) {
    out += wire::serialize_reply(id++, reply);
    out += '\n';
    if (reply.ok() && reply->cursor != 0) cursors.push_back(reply->cursor);
  }
  // Drain every cursor to exhaustion, plus one fetch past the end so
  // the kExhausted reply bytes are part of the comparison too.
  for (const std::uint64_t cursor : cursors) {
    while (true) {
      const auto page = engine.next(cursor);
      out += wire::serialize_reply(id++, page);
      out += '\n';
      if (!page.ok() || !page->has_more) break;
    }
    out += wire::serialize_reply(id++, engine.next(cursor));
    out += '\n';
  }
  return out;
}

class QueryDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryDeterminism, BatchRepliesIdenticalAcrossWorkerCounts) {
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const std::string reference =
      serialized_session(fixtures::random_history(GetParam()));
  EXPECT_FALSE(reference.empty());
  for (unsigned workers : {8u}) {
    util::set_analysis_threads(workers);
    EXPECT_EQ(serialized_session(fixtures::random_history(GetParam())),
              reference)
        << workers << " workers, seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, QueryDeterminism,
                         ::testing::Range<std::uint64_t>(0, 8));

// Dense histories engage the genuinely parallel code paths (multi-
// chunk scans, parallel sorts) underneath the batched queries.
TEST(QueryDeterminismDense, BatchRepliesIdenticalAcrossWorkerCounts) {
  fixtures::ThreadCountGuard guard;
  for (const std::uint64_t seed : {1ULL, 5ULL}) {
    util::set_analysis_threads(1);
    const std::string reference =
        serialized_session(fixtures::dense_history(seed));
    EXPECT_GT(reference.size(), 1000u)
        << "dense history must produce a substantial reply stream";
    for (unsigned workers : {2u, 8u}) {
      util::set_analysis_threads(workers);
      EXPECT_EQ(serialized_session(fixtures::dense_history(seed)),
                reference)
          << "query replies diverged at " << workers
          << " workers on dense seed " << seed;
    }
  }
}

}  // namespace
