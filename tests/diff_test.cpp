// CPG diff and PT timing tests.
#include <gtest/gtest.h>

#include "cpg/diff.h"
#include "core/inspector.h"
#include "ptsim/encoder.h"
#include "ptsim/flow.h"
#include "ptsim/sink.h"
#include "workloads/common.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;
using workloads::global_word;
using workloads::mutex_id;
using workloads::ScriptBuilder;

// Two threads race through a lock-protected update loop: different
// seeds interleave differently (the debugging_race example program).
runtime::Program racing_program() {
  runtime::Program p;
  p.name = "racing";
  const auto m = mutex_id(0);
  const auto start = workloads::barrier_id(0);
  p.barriers.push_back({start, 2});
  for (int w = 0; w < 2; ++w) {
    ScriptBuilder b(w + 1);
    b.barrier_wait(start);
    for (std::uint64_t i = 0; i < 6; ++i) {
      b.lock(m);
      b.load(global_word(0));
      b.store(global_word(0), 100 * (w + 1ull) + i);
      b.unlock(m);
      b.compute(8000);
    }
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  main.spawn(0).spawn(1).join(0).join(1);
  p.main_script = 2;
  p.scripts.push_back(main.take());
  return p;
}

cpg::Graph run_with_seed(const runtime::Program& p, std::uint64_t seed) {
  core::Options options;
  options.schedule_seed = seed;
  options.schedule_jitter_ns = 120'000;
  return *core::Inspector(options).run(p).graph;
}

TEST(GraphDiff, IdenticalRunsDiffEmpty) {
  const auto p = racing_program();
  const auto a = run_with_seed(p, 3);
  const auto b = run_with_seed(p, 3);
  const auto diff = cpg::diff_graphs(a, b);
  EXPECT_TRUE(diff.identical()) << diff.to_string();
}

TEST(GraphDiff, DifferentSchedulesDivergeDetectably) {
  const auto p = racing_program();
  // Find two seeds with different schedules.
  const auto a = run_with_seed(p, 1);
  for (std::uint64_t seed = 2; seed <= 24; ++seed) {
    const auto b = run_with_seed(p, seed);
    const auto diff = cpg::diff_graphs(a, b);
    if (!diff.identical()) {
      EXPECT_TRUE(diff.first_schedule_divergence.has_value() ||
                  diff.sync_edges_only_a + diff.sync_edges_only_b > 0)
          << "a non-identical diff must localize the divergence";
      EXPECT_NE(diff.to_string().find("diverge"), std::string::npos);
      return;
    }
  }
  GTEST_SKIP() << "no divergent schedule found in the sweep";
}

TEST(GraphDiff, SetChangesSurfaceDataflowShifts) {
  // Hand-build two graphs differing in one node's read set.
  auto make = [](std::vector<std::uint64_t> reads) {
    cpg::Recorder rec;
    rec.thread_started(0, 0);
    rec.end_subcomputation(
        0, {reads.begin(), reads.end()}, {7},
        {sync::SyncEventKind::kMutexLock,
         sync::make_object_id(sync::ObjectKind::kMutex, 1)});
    rec.thread_exiting(0, {}, {});
    return std::move(rec).finalize();
  };
  const auto a = make({1, 2});
  const auto b = make({2, 3});
  const auto diff = cpg::diff_graphs(a, b);
  ASSERT_EQ(diff.set_changes.size(), 1u);
  EXPECT_EQ(diff.set_changes[0].reads_added, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(diff.set_changes[0].reads_removed,
            (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(diff.set_changes[0].writes_added.empty());
}

TEST(GraphDiff, MissingNodesReported) {
  const auto p = racing_program();
  const auto full = run_with_seed(p, 3);
  // A snapshot prefix has fewer nodes.
  core::Options options;
  options.schedule_seed = 3;
  options.schedule_jitter_ns = 120'000;
  options.snapshot_every_syncs = 8;
  const auto result = core::Inspector(options).run(p);
  auto snap = result.snapshots->consume();
  ASSERT_TRUE(snap.has_value());
  const auto diff = cpg::diff_graphs(full, *snap);
  EXPECT_GT(diff.only_in_a.size(), 0u);
  EXPECT_TRUE(diff.only_in_b.empty());
}

// --- PT timestamps ------------------------------------------------------

TEST(PtTiming, TscStampedInPsbPlus) {
  ptsim::VectorSink sink;
  ptsim::EncoderOptions opts;
  opts.psb_period_bytes = 64;
  ptsim::PacketEncoder enc(sink, opts);
  enc.set_timestamp(1000);
  enc.on_enable(0x1000);
  for (int i = 0; i < 2000; ++i) {
    enc.set_timestamp(1000 + static_cast<std::uint64_t>(i) * 10);
    enc.on_conditional(i % 2 == 0);
  }
  enc.flush();
  ptsim::PacketDecoder dec(sink.data());
  std::vector<std::uint64_t> stamps;
  while (auto p = dec.next()) {
    if (p->type == ptsim::PacketType::kTsc) stamps.push_back(p->payload);
  }
  ASSERT_GT(stamps.size(), 2u) << "periodic PSB+ must carry TSC";
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]) << "timestamps must be monotone";
  }
  EXPECT_EQ(stamps.front(), 1000u);
}

TEST(PtTiming, FlowResultExposesTimestamps) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.2;
  core::Inspector insp;
  const auto result = insp.run(workloads::make_histogram(config));
  bool any = false;
  for (auto pid : result.perf_session->traced_pids()) {
    const auto& trace = result.perf_session->trace_for(pid);
    ptsim::FlowDecoder decoder(result.image->image, trace);
    const auto flow = decoder.run();
    if (flow.last_timestamp != 0) {
      any = true;
      EXPECT_LE(flow.first_timestamp, flow.last_timestamp);
      EXPECT_LE(flow.last_timestamp, result.stats.sim_time_ns);
    }
  }
  EXPECT_TRUE(any) << "executor stamps simulated time into the trace";
}

}  // namespace
