// Exact-equivalence tests for the branch-reduced page-set kernels.
//
// page_set_gallop and page_set_first_intersection were rewritten for
// speed (branchless closing search, SSE-width block merge, range
// fences); the straightforward scalar forms they replaced live on in
// detail::*_scalar as bench baselines. These tests hold the fast
// kernels to bit-exact agreement with the scalar references across
// randomized and adversarial inputs, so any future tuning of the fast
// path is caught the moment it changes a result.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "util/page_set.h"

namespace {

using inspector::PageSet;
using inspector::page_set_contains;
using inspector::page_set_first_intersection;
using inspector::page_set_gallop;
using inspector::detail::page_set_first_intersection_scalar;
using inspector::detail::page_set_gallop_scalar;

PageSet random_set(std::mt19937_64& rng, std::size_t max_len,
                   std::uint64_t max_gap) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<std::uint64_t> gap_dist(1, max_gap);
  std::uniform_int_distribution<std::uint64_t> start_dist(0, 1000);
  PageSet set;
  std::uint64_t v = start_dist(rng);
  const std::size_t n = len_dist(rng);
  for (std::size_t i = 0; i < n; ++i) {
    set.push_back(v);
    v += gap_dist(rng);
  }
  return set;
}

TEST(PageSetGallop, MatchesScalarReferenceOnRandomizedProbes) {
  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 300; ++iter) {
    const PageSet set = random_set(rng, 64, 9);
    const std::uint64_t hi = set.empty() ? 32 : set.back() + 3;
    for (std::uint64_t page = 0; page <= hi; ++page) {
      for (std::size_t from = 0; from <= set.size(); ++from) {
        ASSERT_EQ(page_set_gallop(set, from, page),
                  page_set_gallop_scalar(set, from, page))
            << "iter " << iter << " page " << page << " from " << from;
      }
    }
  }
}

TEST(PageSetGallop, AgreesWithLowerBoundFromStart) {
  std::mt19937_64 rng(12);
  for (int iter = 0; iter < 200; ++iter) {
    const PageSet set = random_set(rng, 128, 5);
    const std::uint64_t hi = set.empty() ? 8 : set.back() + 2;
    for (std::uint64_t page = 0; page <= hi; ++page) {
      const auto expect = static_cast<std::size_t>(
          std::lower_bound(set.begin(), set.end(), page) - set.begin());
      ASSERT_EQ(page_set_gallop(set, 0, page), expect);
    }
  }
}

TEST(PageSetIntersection, MatchesScalarReferenceOnRandomizedSets) {
  std::mt19937_64 rng(13);
  for (int iter = 0; iter < 2000; ++iter) {
    const PageSet a = random_set(rng, 48, 4);
    const PageSet b = random_set(rng, 48, 4);
    // Sometimes ignore a prefix of the true intersection so the
    // fast path's skip-and-continue behavior is exercised too.
    PageSet ignored;
    for (std::uint64_t page : a) {
      if (ignored.size() < 3 && page_set_contains(b, page)) {
        ignored.push_back(page);
      }
    }
    ASSERT_EQ(page_set_first_intersection(a, b, ignored),
              page_set_first_intersection_scalar(a, b, ignored))
        << "iter " << iter;
    ASSERT_EQ(page_set_first_intersection(a, b, {}),
              page_set_first_intersection_scalar(a, b, {}))
        << "iter " << iter;
  }
}

TEST(PageSetIntersection, MatchesScalarReferenceOnSkewedSets) {
  std::mt19937_64 rng(14);
  for (int iter = 0; iter < 200; ++iter) {
    const PageSet big = random_set(rng, 2048, 3);
    const PageSet small = random_set(rng, 8, 700);
    ASSERT_EQ(page_set_first_intersection(big, small, {}),
              page_set_first_intersection_scalar(big, small, {}));
    ASSERT_EQ(page_set_first_intersection(small, big, {}),
              page_set_first_intersection_scalar(small, big, {}));
  }
}

TEST(PageSetIntersection, DisjointRangesShortCircuitToTheSameAnswer) {
  const PageSet lo = {1, 2, 3, 9};
  const PageSet hi = {10, 11, 40};
  EXPECT_EQ(page_set_first_intersection(lo, hi, {}), std::nullopt);
  EXPECT_EQ(page_set_first_intersection(hi, lo, {}), std::nullopt);
  // Touching boundaries must still intersect.
  const PageSet touch = {9, 100};
  EXPECT_EQ(page_set_first_intersection(lo, touch, {}),
            std::optional<std::uint64_t>(9));
  EXPECT_EQ(page_set_first_intersection(touch, lo, {}),
            std::optional<std::uint64_t>(9));
}

TEST(PageSetIntersection, EmptyAndSingletonEdges) {
  const PageSet empty;
  const PageSet one = {7};
  EXPECT_EQ(page_set_first_intersection(empty, one, {}), std::nullopt);
  EXPECT_EQ(page_set_first_intersection(one, empty, {}), std::nullopt);
  EXPECT_EQ(page_set_first_intersection(empty, empty, {}), std::nullopt);
  EXPECT_EQ(page_set_first_intersection(one, one, {}),
            std::optional<std::uint64_t>(7));
  EXPECT_EQ(page_set_first_intersection(one, one, one), std::nullopt);
}

TEST(PageSetIntersection, IgnoredMatchInsideSseBlockStillSkipsForward) {
  // The block scan breaks to the scalar merge on any equality hit;
  // when that hit is ignored, the merge must keep going and find the
  // next common element, exactly like the reference.
  const PageSet a = {10, 20, 30, 40, 50, 60};
  const PageSet b = {10, 21, 30, 41, 50, 61};
  const PageSet ignored = {10, 30};
  EXPECT_EQ(page_set_first_intersection(a, b, ignored),
            std::optional<std::uint64_t>(50));
  EXPECT_EQ(page_set_first_intersection(a, b, ignored),
            page_set_first_intersection_scalar(a, b, ignored));
}

TEST(PageSetIntersection, OddLengthTailsAreCoveredByTheScalarMerge) {
  // Lengths chosen so the SSE block loop leaves one-element tails.
  const PageSet a = {1, 4, 8, 12, 99};
  const PageSet b = {2, 5, 9, 13, 99};
  EXPECT_EQ(page_set_first_intersection(a, b, {}),
            std::optional<std::uint64_t>(99));
}

}  // namespace
