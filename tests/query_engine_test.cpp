// QueryEngine behavior tests: the no-exceptions contract on every
// error path (bad node ids, unknown pages, unknown cursors, cyclic
// graphs), cursor pagination and exhaustion, session isolation, the
// result cache, and batches mixing valid and invalid requests.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <variant>
#include <vector>

#include "analysis/taint.h"
#include "cpg/graph.h"
#include "history_fixtures.h"
#include "query/engine.h"

namespace {

using namespace inspector;
using namespace inspector::query;
using cpg::NodeId;

cpg::SubComputation node(NodeId id, cpg::ThreadId t, std::uint64_t alpha,
                         std::vector<std::uint64_t> clock, PageSet reads,
                         PageSet writes) {
  cpg::SubComputation n;
  n.id = id;
  n.thread = t;
  n.alpha = alpha;
  for (std::size_t i = 0; i < clock.size(); ++i) n.clock.set(i, clock[i]);
  page_set_normalize(reads);
  page_set_normalize(writes);
  n.read_set = std::move(reads);
  n.write_set = std::move(writes);
  return n;
}

/// The paper's Figure-1 shape: T1.a -> T2.a -> T1.b through pages
/// y=1, x=2 (same as graph_test.cpp).
std::shared_ptr<const cpg::Graph> figure1() {
  constexpr std::uint64_t y = 1, x = 2;
  std::vector<cpg::SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1, 0}, {y}, {x, y}));
  nodes.push_back(node(1, 1, 0, {1, 1}, {x}, {y}));
  nodes.push_back(node(2, 0, 1, {2, 1}, {y}, {y}));
  std::vector<cpg::Edge> edges = {
      {0, 2, cpg::EdgeKind::kControl, 0},
      {0, 1, cpg::EdgeKind::kSync, 99},
      {1, 2, cpg::EdgeKind::kSync, 99},
  };
  return std::make_shared<const cpg::Graph>(std::move(nodes),
                                            std::move(edges),
                                            std::vector<sync::SyncEvent>{});
}

std::shared_ptr<const cpg::Graph> cyclic_graph() {
  std::vector<cpg::SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1}, {}, {}));
  nodes.push_back(node(1, 0, 1, {2}, {}, {}));
  std::vector<cpg::Edge> edges = {
      {0, 1, cpg::EdgeKind::kSync, 0},
      {1, 0, cpg::EdgeKind::kSync, 0},
  };
  return std::make_shared<const cpg::Graph>(std::move(nodes),
                                            std::move(edges),
                                            std::vector<sync::SyncEvent>{});
}

// --- error paths -------------------------------------------------------

TEST(QueryEngineErrors, OutOfRangeNodeIdsOnEveryNodeQuery) {
  QueryEngine engine(figure1());
  const NodeId bad = 999;
  const std::vector<Query> queries = {
      BackwardSliceQuery{bad}, ForwardSliceQuery{bad},
      LatestWritersQuery{bad}, DataDependenciesQuery{bad},
      HappensBeforeQuery{0, bad}, HappensBeforeQuery{bad, 0}};
  for (const Query& q : queries) {
    const auto reply = engine.run(q);
    ASSERT_FALSE(reply.ok()) << query_name(q);
    EXPECT_EQ(reply.status().code(), StatusCode::kOutOfRange)
        << query_name(q);
    EXPECT_NE(reply.status().message().find("out of range"),
              std::string::npos);
  }
}

TEST(QueryEngineErrors, UntouchedPageIsNotFound) {
  QueryEngine engine(figure1());
  const auto reply = engine.run(PageAccessorsQuery{55});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_NE(reply.status().message().find("55"), std::string::npos);
}

TEST(QueryEngineErrors, TaintSeedsMayNameUntouchedPages) {
  // Seeds are a change description, not a lookup: pages no node
  // touched simply cannot propagate, and still appear in the result
  // (the CLI seeds whole input regions this way).
  QueryEngine engine(figure1());
  const auto reply = engine.run(TaintQuery{{55, 56}, true});
  ASSERT_TRUE(reply.ok()) << reply.status().message();
  const auto& flow = std::get<FlowResult>(reply->result);
  EXPECT_TRUE(flow.nodes.empty());
  EXPECT_EQ(flow.pages, (PageSet{55, 56}));
}

TEST(QueryEngineErrors, CyclicGraphFailsFlowQueriesButNotLookups) {
  QueryEngine engine(cyclic_graph());
  for (const Query& q : std::vector<Query>{
           TaintQuery{{1}, true}, InvalidateQuery{{1}},
           CriticalPathQuery{}}) {
    const auto reply = engine.run(q);
    ASSERT_FALSE(reply.ok()) << query_name(q);
    EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition)
        << query_name(q);
    EXPECT_NE(reply.status().message().find("cycle"), std::string::npos);
  }
  // Queries that do not need a topological order still answer.
  EXPECT_TRUE(engine.run(StatsQuery{}).ok());
  EXPECT_TRUE(engine.run(HappensBeforeQuery{0, 1}).ok());
  EXPECT_TRUE(engine.run(RacesQuery{}).ok());
}

TEST(QueryEngineErrors, EmptyGraphAnswersScalarsAndRejectsNodeIds) {
  QueryEngine engine(std::make_shared<const cpg::Graph>());
  EXPECT_TRUE(engine.run(StatsQuery{}).ok());
  EXPECT_TRUE(engine.run(RacesQuery{}).ok());
  const auto reply = engine.run(BackwardSliceQuery{0});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kOutOfRange);
}

// --- ordering ----------------------------------------------------------

TEST(QueryEngine, HappensBeforeOrderings) {
  QueryEngine engine(figure1());
  const auto ordering = [&](NodeId a, NodeId b) {
    const auto reply = engine.run(HappensBeforeQuery{a, b});
    EXPECT_TRUE(reply.ok());
    return std::get<HappensBeforeResult>(reply->result).ordering;
  };
  EXPECT_EQ(ordering(0, 1), Ordering::kBefore);
  EXPECT_EQ(ordering(1, 0), Ordering::kAfter);
  EXPECT_EQ(ordering(1, 1), Ordering::kEqual);

  // Two concurrent nodes need a graph with incomparable clocks.
  std::vector<cpg::SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1, 0}, {}, {7}));
  nodes.push_back(node(1, 1, 0, {0, 1}, {}, {7}));
  QueryEngine concurrent_engine(std::make_shared<const cpg::Graph>(
      std::move(nodes), std::vector<cpg::Edge>{},
      std::vector<sync::SyncEvent>{}));
  const auto reply = concurrent_engine.run(HappensBeforeQuery{0, 1});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(std::get<HappensBeforeResult>(reply->result).ordering,
            Ordering::kConcurrent);
}

// --- cursors and sessions ----------------------------------------------

TEST(QueryEngineCursors, PaginatesAndExhausts) {
  QueryEngine engine(
      std::make_shared<const cpg::Graph>(fixtures::dense_history(3)));

  // The full answer, for comparison.
  const auto full = engine.run(ForwardSliceQuery{0});
  ASSERT_TRUE(full.ok());
  const auto& full_nodes = std::get<NodeListResult>(full->result).nodes;
  ASSERT_GT(full_nodes.size(), 10u);

  QueryOptions options;
  options.page_size = 7;
  auto reply = engine.run(ForwardSliceQuery{0}, options);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->total_items, full_nodes.size());
  EXPECT_TRUE(reply->has_more);
  ASSERT_NE(reply->cursor, 0u);
  const std::uint64_t cursor = reply->cursor;

  std::vector<NodeId> reassembled =
      std::get<NodeListResult>(reply->result).nodes;
  EXPECT_EQ(reassembled.size(), 7u);
  while (reply->has_more) {
    reply = engine.next(cursor);
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    const auto& page = std::get<NodeListResult>(reply->result).nodes;
    EXPECT_LE(page.size(), 7u);
    EXPECT_FALSE(page.empty());
    reassembled.insert(reassembled.end(), page.begin(), page.end());
  }
  EXPECT_EQ(reply->cursor, 0u) << "final page closes the cursor";
  EXPECT_EQ(reassembled, full_nodes);

  // Reuse after exhaustion: typed error, stable across calls.
  for (int i = 0; i < 2; ++i) {
    const auto drained = engine.next(cursor);
    ASSERT_FALSE(drained.ok());
    EXPECT_EQ(drained.status().code(), StatusCode::kExhausted);
  }
}

TEST(QueryEngineCursors, AbandonedCursorsAreEvictedByTheSessionCap) {
  // A serving session whose client abandons paginated queries must not
  // pin every full result forever: past the per-session cap (1024),
  // the oldest cursors are evicted and answer kNotFound.
  QueryEngine engine(
      std::make_shared<const cpg::Graph>(fixtures::dense_history(2)));
  QueryOptions options;
  options.page_size = 3;
  const auto first = engine.run(ForwardSliceQuery{0}, options);
  ASSERT_TRUE(first.ok());
  const std::uint64_t first_cursor = first->cursor;
  ASSERT_NE(first_cursor, 0u);
  EXPECT_TRUE(engine.next(first_cursor).ok());

  for (int i = 0; i < 1024; ++i) {
    const auto reply = engine.run(ForwardSliceQuery{0}, options);
    ASSERT_TRUE(reply.ok());
    ASSERT_NE(reply->cursor, 0u);
  }
  const auto evicted = engine.next(first_cursor);
  ASSERT_FALSE(evicted.ok());
  EXPECT_EQ(evicted.status().code(), StatusCode::kNotFound);
}

TEST(QueryEngineCursors, UnknownCursorIsNotFound) {
  QueryEngine engine(figure1());
  const auto reply = engine.next(42);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
}

TEST(QueryEngineCursors, ScalarResultsNeverPaginate) {
  QueryEngine engine(figure1());
  QueryOptions options;
  options.page_size = 1;
  const auto reply = engine.run(StatsQuery{}, options);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->has_more);
  EXPECT_EQ(reply->cursor, 0u);
  EXPECT_EQ(reply->total_items, 1u);
}

TEST(QueryEngineCursors, MultiListResultsPaginateAcrossLists) {
  // Figure 1 under taint from page 1: all three nodes taint, pages
  // {1, 2}, and the thread-exit sinks list is empty. Item space =
  // nodes ++ pages ++ sinks; a page size of 2 must cut across the
  // nodes/pages boundary and reassemble exactly.
  QueryEngine engine(figure1());
  const auto full = engine.run(TaintQuery{{1}, true});
  ASSERT_TRUE(full.ok());
  const auto& flow = std::get<FlowResult>(full->result);
  ASSERT_EQ(flow.nodes.size(), 3u);
  ASSERT_EQ(flow.pages, (PageSet{1, 2}));

  QueryOptions options;
  options.page_size = 2;
  auto reply = engine.run(TaintQuery{{1}, true}, options);
  ASSERT_TRUE(reply.ok());
  FlowResult reassembled = std::get<FlowResult>(reply->result);
  const std::uint64_t cursor = reply->cursor;
  ASSERT_NE(cursor, 0u);
  while (reply->has_more) {
    reply = engine.next(cursor);
    ASSERT_TRUE(reply.ok());
    const auto& page = std::get<FlowResult>(reply->result);
    reassembled.nodes.insert(reassembled.nodes.end(), page.nodes.begin(),
                             page.nodes.end());
    reassembled.pages.insert(reassembled.pages.end(), page.pages.begin(),
                             page.pages.end());
    reassembled.sinks.insert(reassembled.sinks.end(), page.sinks.begin(),
                             page.sinks.end());
  }
  EXPECT_EQ(reassembled, flow);
}

TEST(QueryEngineSessions, CursorsAreSessionScoped) {
  QueryEngine engine(
      std::make_shared<const cpg::Graph>(fixtures::dense_history(1)));
  const auto session_a = engine.open_session();
  const auto session_b = engine.open_session();

  QueryOptions options;
  options.page_size = 3;
  const auto reply = engine.run(session_a, ForwardSliceQuery{0}, options);
  ASSERT_TRUE(reply.ok());
  ASSERT_NE(reply->cursor, 0u);

  // The cursor resolves in its own session only.
  EXPECT_TRUE(engine.next(session_a, reply->cursor).ok());
  const auto cross = engine.next(session_b, reply->cursor);
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.status().code(), StatusCode::kNotFound);

  // Closing the session drops its cursors; the session itself is gone.
  EXPECT_TRUE(engine.close_session(session_a).ok());
  const auto after_close = engine.next(session_a, reply->cursor);
  ASSERT_FALSE(after_close.ok());
  EXPECT_EQ(after_close.status().code(), StatusCode::kNotFound);

  EXPECT_EQ(engine.close_session(session_a).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.close_session(QueryEngine::kDefaultSession).code(),
            StatusCode::kInvalidArgument);
}

// --- batches -----------------------------------------------------------

TEST(QueryEngineBatch, MixedValidAndInvalidQueriesGetPerQueryStatuses) {
  QueryEngine engine(figure1());
  const std::vector<Query> queries = {
      StatsQuery{},              // ok
      BackwardSliceQuery{999},   // out of range
      RacesQuery{},              // ok
      PageAccessorsQuery{55},    // unknown page
      HappensBeforeQuery{0, 2},  // ok
  };
  const auto replies =
      engine.run_batch(QueryEngine::kDefaultSession, queries);
  ASSERT_EQ(replies.size(), queries.size());
  EXPECT_TRUE(replies[0].ok());
  EXPECT_EQ(replies[1].status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(replies[2].ok());
  EXPECT_EQ(replies[3].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(replies[4].ok());
  EXPECT_EQ(std::get<HappensBeforeResult>(replies[4]->result).ordering,
            Ordering::kBefore);
}

TEST(QueryEngineBatch, MatchesSingleQueryResults) {
  QueryEngine engine(
      std::make_shared<const cpg::Graph>(fixtures::random_history(7)));
  const std::vector<Query> queries = {
      BackwardSliceQuery{0}, ForwardSliceQuery{0}, RacesQuery{},
      TaintQuery{{0, 3, 7}, true}, CriticalPathQuery{}};
  const auto batched =
      engine.run_batch(QueryEngine::kDefaultSession, queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = engine.run(queries[i]);
    ASSERT_TRUE(single.ok());
    ASSERT_TRUE(batched[i].ok());
    EXPECT_TRUE(single->result == batched[i]->result) << i;
  }
}

TEST(QueryEngineBatch, UnknownSessionErrorsEveryReply) {
  QueryEngine engine(figure1());
  const std::vector<Query> queries = {StatsQuery{}, RacesQuery{}};
  const auto replies = engine.run_batch(12345, queries);
  ASSERT_EQ(replies.size(), 2u);
  for (const auto& reply : replies) {
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  }
}

// --- cache -------------------------------------------------------------

TEST(QueryEngineCache, RepeatedQueriesHitTheCache) {
  QueryEngine engine(
      std::make_shared<const cpg::Graph>(fixtures::random_history(2)));
  const auto first = engine.run(RacesQuery{});
  const auto second = engine.run(RacesQuery{});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->result == second->result);
  EXPECT_GE(engine.cache_stats().hits, 1u);

  QueryOptions uncached;
  uncached.skip_cache = true;
  const auto hits_before = engine.cache_stats().hits;
  const auto third = engine.run(RacesQuery{}, uncached);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->result == first->result);
  EXPECT_EQ(engine.cache_stats().hits, hits_before)
      << "skip_cache must bypass the cache entirely";
}

TEST(QueryEngineCache, PageSetOrderVariantsShareOneEntry) {
  // Seeds are set-valued: {7,3}, {3,7}, and {3,3,7} are the same
  // request and must hit the same cache entry.
  QueryEngine engine(
      std::make_shared<const cpg::Graph>(fixtures::random_history(4)));
  const auto a = engine.run(TaintQuery{{7, 3}, true});
  const auto b = engine.run(TaintQuery{{3, 7}, true});
  const auto c = engine.run(TaintQuery{{3, 3, 7}, true});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(a->result == b->result);
  EXPECT_TRUE(a->result == c->result);
  EXPECT_GE(engine.cache_stats().hits, 2u);
}

TEST(QueryEngineCache, ErrorsAreNotCached) {
  QueryEngine engine(figure1());
  (void)engine.run(BackwardSliceQuery{999});
  (void)engine.run(BackwardSliceQuery{999});
  EXPECT_EQ(engine.cache_stats().hits, 0u);
}

// --- parity with the direct analysis calls -----------------------------

TEST(QueryEngineParity, TaintMatchesDirectAnalysis) {
  const auto snapshot =
      std::make_shared<const cpg::Graph>(fixtures::random_history(11));
  QueryEngine engine(snapshot);
  const PageSet seeds = {0, 3, 7};
  const auto reply = engine.run(TaintQuery{seeds, true});
  ASSERT_TRUE(reply.ok());
  const auto& flow = std::get<FlowResult>(reply->result);

  const auto direct = analysis::propagate_taint(*snapshot, seeds);
  EXPECT_EQ(flow.nodes, direct.tainted_nodes);
  EXPECT_EQ(flow.pages, direct.tainted_pages);
  EXPECT_EQ(flow.sinks,
            analysis::tainted_sinks(*snapshot, direct,
                                    sync::SyncEventKind::kThreadExit));
}

}  // namespace
