// Offline-pipeline tests: journal capture/serialization, image
// serialization, and the end-to-end guarantee that journal + decoded PT
// rebuilds the *identical* CPG (the paper's perf.data post-processing
// path, §V-B).
#include <gtest/gtest.h>

#include "core/inspector.h"
#include "cpg/journal.h"
#include "cpg/offline.h"
#include "cpg/serialize.h"
#include "ptsim/flow.h"
#include "ptsim/image.h"
#include "runtime/image_builder.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;

runtime::ExecutionResult journaled_run(const std::string& name,
                                       runtime::Program* out_program) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  auto program = workloads::make_workload(name, config);
  core::Options options;
  options.capture_journal = true;
  core::Inspector insp(options);
  auto result = insp.run(program);
  if (out_program != nullptr) *out_program = std::move(program);
  return result;
}

TEST(Journal, CapturedWhenEnabled) {
  const auto result = journaled_run("histogram", nullptr);
  ASSERT_NE(result.journal, nullptr);
  EXPECT_FALSE(result.journal->ops.empty());
  // Every node corresponds to exactly one kEndSub or kThreadExit.
  std::size_t closings = 0;
  for (const auto& op : result.journal->ops) {
    if (op.kind == cpg::JournalOp::Kind::kEndSub ||
        op.kind == cpg::JournalOp::Kind::kThreadExit) {
      ++closings;
    }
  }
  EXPECT_EQ(closings, result.graph->nodes().size());
}

TEST(Journal, NotCapturedByDefault) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  core::Inspector insp;
  const auto result = insp.run(workloads::make_histogram(config));
  EXPECT_EQ(result.journal, nullptr);
}

TEST(Journal, BinaryRoundTrip) {
  const auto result = journaled_run("word_count", nullptr);
  const auto bytes = cpg::serialize(*result.journal);
  const auto back = cpg::deserialize_journal(bytes);
  EXPECT_EQ(back, *result.journal);
}

TEST(Journal, TruncationThrows) {
  const auto result = journaled_run("histogram", nullptr);
  auto bytes = cpg::serialize(*result.journal);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)cpg::deserialize_journal(bytes), std::runtime_error);
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)cpg::deserialize_journal(bytes), std::runtime_error);
}

TEST(ImageSerialize, RoundTrip) {
  workloads::WorkloadConfig config;
  config.threads = 2;
  config.scale = 0.1;
  const auto program = workloads::make_histogram(config);
  const auto built = runtime::build_image(program);
  const auto bytes = ptsim::serialize_image(built.image);
  const auto back = ptsim::deserialize_image(bytes);
  EXPECT_EQ(back.block_count(), built.image.block_count());
  EXPECT_EQ(back.segments().size(), built.image.segments().size());
  // Spot-check block lookups agree.
  for (const auto& block : built.image.blocks()) {
    const auto* b = back.block_at(block.start);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->size_bytes, block.size_bytes);
    EXPECT_EQ(static_cast<int>(b->term), static_cast<int>(block.term));
    EXPECT_EQ(b->taken_target, block.taken_target);
  }
}

TEST(ImageSerialize, BadInputThrows) {
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5};
  EXPECT_THROW((void)ptsim::deserialize_image(junk), std::runtime_error);
}

class OfflineRebuildTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OfflineRebuildTest, RebuildsIdenticalGraph) {
  const auto result = journaled_run(GetParam(), nullptr);
  const cpg::Graph offline = core::Inspector::rebuild_offline(result);
  // Byte-identical graphs: nodes, clocks, sets, thunks, edges, schedule.
  EXPECT_EQ(cpg::serialize(offline), cpg::serialize(*result.graph))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, OfflineRebuildTest,
                         ::testing::Values("histogram", "word_count",
                                           "canneal", "kmeans",
                                           "streamcluster"),
                         [](const auto& info) { return info.param; });

TEST(OfflineRebuild, RequiresJournal) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  core::Inspector insp;
  const auto result = insp.run(workloads::make_histogram(config));
  EXPECT_THROW((void)core::Inspector::rebuild_offline(result),
               std::runtime_error);
}

TEST(OfflineRebuild, TruncatedTraceIsDetected) {
  const auto result = journaled_run("histogram", nullptr);
  auto branches = core::Inspector::decode_branches(result);
  // Chop one thread's stream: the journal demands more branches.
  ASSERT_FALSE(branches.empty());
  auto& first = branches.begin()->second;
  ASSERT_FALSE(first.empty());
  first.resize(first.size() / 2);
  EXPECT_THROW(
      (void)cpg::rebuild_from_journal(*result.journal, branches),
      std::runtime_error);
}

TEST(OfflineRebuild, SerializedArtifactsSuffice) {
  // The full offline story: persist journal + image + perf.data,
  // reload all three, rebuild.
  runtime::Program program;
  const auto result = journaled_run("word_count", &program);

  const auto journal_bytes = cpg::serialize(*result.journal);
  const auto image_bytes = ptsim::serialize_image(result.image->image);

  const auto journal = cpg::deserialize_journal(journal_bytes);
  const auto image = ptsim::deserialize_image(image_bytes);

  // Decode from the perf session's streams against the *reloaded* image.
  std::map<cpg::ThreadId, std::vector<cpg::BranchRecord>> branches;
  for (auto pid : result.perf_session->traced_pids()) {
    const auto& trace = result.perf_session->trace_for(pid);
    ptsim::FlowDecoder decoder(image, trace);
    const auto flow = decoder.run();
    auto& out = branches[pid];
    for (const auto& e : flow.events) {
      using K = ptsim::BranchEvent::Kind;
      if (e.kind == K::kConditional) {
        out.push_back({e.ip, e.target, e.taken, false});
      } else if (e.kind == K::kIndirect) {
        out.push_back({e.ip, e.target, true, true});
      }
    }
  }
  const auto offline = cpg::rebuild_from_journal(journal, branches);
  EXPECT_EQ(cpg::serialize(offline), cpg::serialize(*result.graph));
}

}  // namespace
