// Shared recorder-history fixtures for the determinism suites.
//
// Both the parallel-analysis determinism tests and the query-engine
// determinism tests rebuild the same randomized histories at several
// worker counts and compare outputs; the builders live here so the two
// suites cannot drift apart. Everything is deterministic given the
// seed -- that is the point.
#pragma once

#include <cstdint>
#include <random>
#include <utility>

#include "cpg/graph.h"
#include "cpg/recorder.h"
#include "util/page_set.h"
#include "util/parallel.h"

namespace inspector::fixtures {

/// Restores the environment/hardware analysis thread count on scope
/// exit, so a test that pins worker counts cannot leak its setting.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_analysis_threads(0); }
};

inline constexpr std::uint64_t kPageUniverse = 16;

inline PageSet random_pages(std::mt19937_64& rng) {
  PageSet pages;
  const std::size_t count = rng() % 6;
  for (std::size_t i = 0; i < count; ++i) {
    pages.push_back(rng() % kPageUniverse);
  }
  return pages;
}

/// A small multi-threaded history: random lock/unlock interleavings
/// over a shared mutex pool with random page sets. Deterministic given
/// the seed, so every worker count sees the exact same recorded
/// history.
inline cpg::Graph random_history(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::uint32_t threads = 2 + rng() % 4;
  const std::uint32_t mutexes = 1 + rng() % 3;
  cpg::Recorder rec;
  for (std::uint32_t t = 0; t < threads; ++t) rec.thread_started(t, t);
  const std::size_t steps = 40 + rng() % 60;
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint32_t t = rng() % threads;
    const auto m = sync::make_object_id(sync::ObjectKind::kMutex,
                                        1 + rng() % mutexes);
    switch (rng() % 4) {
      case 0:
      case 1:
        rec.end_subcomputation(t, random_pages(rng), random_pages(rng),
                               {sync::SyncEventKind::kMutexLock, m});
        break;
      case 2:
        rec.on_release(t, m);
        break;
      default:
        rec.on_acquire(t, m);
        break;
    }
  }
  for (std::uint32_t t = 0; t < threads; ++t) {
    rec.thread_exiting(t, random_pages(rng), random_pages(rng));
  }
  return std::move(rec).finalize();
}

/// A barrier-round history: every thread merges its clock at each
/// round boundary, so round boundaries are global synchronization
/// points -- the shape that gives shard::rank_prefix clean cuts and
/// shard::append a genuinely incremental suffix. Deterministic given
/// (seed, rounds).
inline cpg::Graph barrier_history(std::uint64_t seed, std::uint32_t rounds) {
  std::mt19937_64 rng(seed);
  const std::uint32_t threads = 3 + rng() % 3;
  const auto barrier = sync::make_object_id(sync::ObjectKind::kBarrier, 1);
  cpg::Recorder rec;
  for (std::uint32_t t = 0; t < threads; ++t) rec.thread_started(t, t);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      rec.end_subcomputation(t, random_pages(rng), random_pages(rng),
                             {sync::SyncEventKind::kBarrierWait, barrier});
      rec.on_release(t, barrier);
    }
    for (std::uint32_t t = 0; t < threads; ++t) rec.on_acquire(t, barrier);
  }
  for (std::uint32_t t = 0; t < threads; ++t) {
    rec.thread_exiting(t, random_pages(rng), random_pages(rng));
  }
  return std::move(rec).finalize();
}

/// A history big and page-dense enough to push the index build past
/// every serial cutoff (parallel_sort engages above ~4k touch pairs),
/// so cross-worker comparisons exercise the genuinely parallel code
/// paths, not their inline fallbacks.
inline cpg::Graph dense_history(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr std::uint64_t kDensePages = 96;
  const std::uint32_t threads = 4 + rng() % 4;
  cpg::Recorder rec;
  for (std::uint32_t t = 0; t < threads; ++t) rec.thread_started(t, t);
  const auto m = sync::make_object_id(sync::ObjectKind::kMutex, 1);
  for (std::size_t i = 0; i < 1200; ++i) {
    const std::uint32_t t = rng() % threads;
    PageSet reads;
    PageSet writes;
    for (std::size_t k = 0; k < 4 + rng() % 8; ++k) {
      reads.push_back(rng() % kDensePages);
      writes.push_back(rng() % kDensePages);
    }
    switch (rng() % 4) {
      case 0:
        rec.on_release(t, m);
        break;
      case 1:
        rec.on_acquire(t, m);
        break;
      default:
        rec.end_subcomputation(t, std::move(reads), std::move(writes),
                               {sync::SyncEventKind::kMutexLock, m});
        break;
    }
  }
  for (std::uint32_t t = 0; t < threads; ++t) {
    rec.thread_exiting(t, random_pages(rng), random_pages(rng));
  }
  return std::move(rec).finalize();
}

}  // namespace inspector::fixtures
