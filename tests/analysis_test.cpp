// Tests for the analysis layer: taint propagation, race detection,
// NUMA affinity, critical path (the §VIII case studies as libraries).
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/critical_path.h"
#include "analysis/numa.h"
#include "analysis/races.h"
#include "analysis/taint.h"
#include "core/inspector.h"
#include "memtrack/shared_memory.h"
#include "runtime/executor.h"
#include "workloads/common.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;
using workloads::global_word;
using workloads::mutex_id;
using workloads::ScriptBuilder;

// A program with an explicit flow: input page -> worker A's buffer ->
// shared page -> worker B reads it; worker C never touches input data.
runtime::Program flow_program() {
  runtime::Program p;
  p.name = "flow";
  p.input.push_back({memtrack::AddressLayout::kInputBase, 77});
  const auto m = mutex_id(0);

  ScriptBuilder a(1);
  a.load(memtrack::AddressLayout::kInputBase);  // read the input
  a.lock(m);
  a.store(global_word(0), 77);  // publish derived value
  a.unlock(m);
  p.scripts.push_back(a.take());

  ScriptBuilder b(2);
  b.compute(50000);  // run after A (made certain by lock order + join)
  b.lock(m);
  b.load(global_word(0));
  b.store(global_word(512), 78);  // second-hop derivation
  b.unlock(m);
  p.scripts.push_back(b.take());

  ScriptBuilder c(3);
  c.store(workloads::thread_heap_base(2), 1);  // untainted private work
  p.scripts.push_back(c.take());

  ScriptBuilder main(4);
  main.spawn(0).join(0);  // A completes before B starts
  main.spawn(1).spawn(2).join(1).join(2);
  p.main_script = 3;
  p.scripts.push_back(main.take());
  return p;
}

class AnalysisFixture : public ::testing::Test {
 protected:
  runtime::ExecutionResult run(const runtime::Program& p) {
    core::Inspector insp;
    return insp.run(p);
  }
};

TEST_F(AnalysisFixture, TaintFollowsTwoHopFlow) {
  const auto result = run(flow_program());
  const auto& g = *result.graph;

  const PageSet seeds = {
      memtrack::page_id_of(memtrack::AddressLayout::kInputBase)};
  const auto taint = analysis::propagate_taint(g, seeds);

  // The shared page A wrote and the second-hop page B wrote are both
  // tainted.
  EXPECT_TRUE(page_set_contains(taint.tainted_pages,
                                memtrack::page_id_of(global_word(0))));
  EXPECT_TRUE(page_set_contains(taint.tainted_pages,
                                memtrack::page_id_of(global_word(512))));
  // C's private page is not.
  EXPECT_FALSE(page_set_contains(
      taint.tainted_pages,
      memtrack::page_id_of(workloads::thread_heap_base(2))));

  // A (thread 1) and B (thread 2) have tainted nodes; C (thread 3)
  // does not.
  std::unordered_set<cpg::ThreadId> tainted_threads;
  for (cpg::NodeId id : taint.tainted_nodes) {
    tainted_threads.insert(g.node(id).thread);
  }
  EXPECT_TRUE(tainted_threads.contains(1));
  EXPECT_TRUE(tainted_threads.contains(2));
  EXPECT_FALSE(tainted_threads.contains(3));
}

TEST_F(AnalysisFixture, TaintWithoutCarryoverIsPagePure) {
  const auto result = run(flow_program());
  const auto& g = *result.graph;
  const PageSet seeds = {
      memtrack::page_id_of(memtrack::AddressLayout::kInputBase)};

  analysis::TaintOptions no_carry;
  no_carry.track_register_carryover = false;
  const auto pure = analysis::propagate_taint(g, seeds, no_carry);
  const auto carry = analysis::propagate_taint(g, seeds);
  // Register carry-over can only taint more, never less.
  EXPECT_LE(pure.tainted_nodes.size(), carry.tainted_nodes.size());
  for (std::uint64_t page : pure.tainted_pages) {
    EXPECT_TRUE(page_set_contains(carry.tainted_pages, page));
  }
}

TEST_F(AnalysisFixture, TaintedSinksFindExitNodes) {
  const auto result = run(flow_program());
  const auto& g = *result.graph;
  const PageSet seeds = {
      memtrack::page_id_of(memtrack::AddressLayout::kInputBase)};
  const auto taint = analysis::propagate_taint(g, seeds);
  const auto sinks =
      analysis::tainted_sinks(g, taint, sync::SyncEventKind::kThreadExit);
  // A's and B's exits are tainted sinks; C's is not.
  std::unordered_set<cpg::ThreadId> sink_threads;
  for (auto id : sinks) sink_threads.insert(g.node(id).thread);
  EXPECT_TRUE(sink_threads.contains(1));
  EXPECT_TRUE(sink_threads.contains(2));
  EXPECT_FALSE(sink_threads.contains(3));
}

// --- races -------------------------------------------------------------

runtime::Program racy_program() {
  runtime::Program p;
  p.name = "racy";
  // Two threads write the same global page with NO synchronization.
  for (int w = 0; w < 2; ++w) {
    ScriptBuilder b(w + 1);
    b.store(global_word(static_cast<std::uint64_t>(w)), 1);  // same page!
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  main.spawn(0).spawn(1).join(0).join(1);
  p.main_script = 2;
  p.scripts.push_back(main.take());
  return p;
}

TEST_F(AnalysisFixture, DetectsUnsynchronizedWriteWrite) {
  const auto result = run(racy_program());
  const auto races = analysis::find_races(*result.graph);
  ASSERT_FALSE(races.empty());
  EXPECT_TRUE(races[0].write_write);
  EXPECT_EQ(races[0].page, memtrack::page_id_of(global_word(0)));
  EXPECT_FALSE(analysis::race_free(*result.graph));
}

TEST_F(AnalysisFixture, LockedAccessesAreNotRaces) {
  const auto result = run(flow_program());
  EXPECT_TRUE(analysis::race_free(*result.graph))
      << "lock-ordered and join-ordered accesses are happens-before "
         "ordered";
}

TEST_F(AnalysisFixture, IgnoredPagesSuppressReports) {
  const auto result = run(racy_program());
  analysis::RaceOptions options;
  options.ignored_pages = {memtrack::page_id_of(global_word(0))};
  EXPECT_TRUE(analysis::find_races(*result.graph, options).empty());
}

TEST_F(AnalysisFixture, RaceLimitShortCircuits) {
  const auto result = run(racy_program());
  analysis::RaceOptions options;
  options.limit = 1;
  EXPECT_EQ(analysis::find_races(*result.graph, options).size(), 1u);
}

TEST_F(AnalysisFixture, LockDisciplinedWorkloadsAreRaceFree) {
  // Benchmarks whose cross-thread pages are all lock- or join-ordered:
  // the detector must find nothing at page granularity.
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  for (const std::string name :
       {"histogram", "string_match", "swaptions", "word_count",
        "blackscholes", "kmeans", "reverse_index", "streamcluster"}) {
    const auto result = run(workloads::make_workload(name, config));
    EXPECT_TRUE(analysis::race_free(*result.graph)) << name;
  }
}

TEST_F(AnalysisFixture, FalseSharingWorkloadsAreFlagged) {
  // These four touch shared pages from concurrent sub-computations by
  // design: linear_regression packs accumulators on one page (the
  // Sheriff false-sharing effect §VII-A), matrix_multiply and pca write
  // adjacent output rows of one page from different workers, and
  // canneal reads elements unlocked while peers swap them. At page
  // granularity those are exactly the conflicts the detector reports.
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  for (const std::string name :
       {"linear_regression", "matrix_multiply", "pca", "canneal"}) {
    const auto result = run(workloads::make_workload(name, config));
    EXPECT_FALSE(analysis::race_free(*result.graph)) << name;
  }
}

// --- NUMA ---------------------------------------------------------------

TEST_F(AnalysisFixture, AffinityCountsTouches) {
  const auto result = run(flow_program());
  const auto affinity = analysis::page_affinity(*result.graph);
  EXPECT_GT(affinity.total_touches(), 0u);
  // The input page was touched by thread 1 (worker A).
  const auto it = affinity.touches.find(
      memtrack::page_id_of(memtrack::AddressLayout::kInputBase));
  ASSERT_NE(it, affinity.touches.end());
  EXPECT_TRUE(it->second.contains(1));
}

TEST_F(AnalysisFixture, GuidedPlacementBeatsSingleNode) {
  workloads::WorkloadConfig config;
  config.threads = 8;
  config.scale = 0.3;
  const auto result = run(workloads::make_histogram(config));
  const auto affinity = analysis::page_affinity(*result.graph);
  const auto threads = analysis::round_robin_threads(
      result.stats.threads_spawned, 2);
  const auto placement = analysis::propose_placement(affinity, threads, 2);
  const auto guided = analysis::score_layout(affinity, threads, placement);
  const auto naive = analysis::score_single_node(affinity, threads, 0);
  EXPECT_EQ(guided.total, naive.total);
  EXPECT_LT(guided.remote, naive.remote)
      << "placing pages with their dominant accessor reduces remote "
         "touches";
  EXPECT_LT(guided.remote_share(), 0.5);
}

TEST(NumaHelpers, RoundRobinAlternates) {
  const auto placement = analysis::round_robin_threads(5, 2);
  EXPECT_EQ(placement, (analysis::ThreadPlacement{0, 1, 0, 1, 0}));
}

// --- critical path -------------------------------------------------------

TEST_F(AnalysisFixture, CriticalPathOfSequentialChain) {
  runtime::Program p;
  p.name = "chain";
  ScriptBuilder main(1);
  const auto m = mutex_id(0);
  for (int i = 0; i < 5; ++i) {
    main.lock(m);
    main.unlock(m);
  }
  p.main_script = 0;
  p.scripts.push_back(main.take());
  const auto result = run(p);
  const auto cp = analysis::critical_path(*result.graph);
  // Single thread: the critical path is the whole node chain.
  EXPECT_EQ(cp.length, result.graph->nodes().size());
  EXPECT_DOUBLE_EQ(cp.parallelism(), 1.0);
  // Path nodes are consecutive alphas of thread 0.
  for (std::size_t i = 1; i < cp.nodes.size(); ++i) {
    EXPECT_EQ(result.graph->node(cp.nodes[i]).alpha,
              result.graph->node(cp.nodes[i - 1]).alpha + 1);
  }
}

TEST_F(AnalysisFixture, ParallelWorkloadHasParallelism) {
  workloads::WorkloadConfig config;
  config.threads = 8;
  config.scale = 0.3;
  // streamcluster: barrier rounds give every worker a long node chain,
  // so the graph is much wider than its critical path.
  const auto result = run(workloads::make_streamcluster(config));
  const auto cp = analysis::critical_path(*result.graph);
  EXPECT_GT(cp.parallelism(), 2.0)
      << "8 barrier-round workers must show available parallelism";
  EXPECT_EQ(cp.total_nodes, result.graph->nodes().size());
}

TEST_F(AnalysisFixture, PerThreadSummaryAddsUp) {
  const auto result = run(flow_program());
  const auto& g = *result.graph;
  const auto summaries = analysis::per_thread_summary(g);
  std::size_t nodes = 0;
  std::uint64_t thunks = 0;
  for (const auto& s : summaries) {
    nodes += s.subcomputations;
    thunks += s.thunks;
  }
  EXPECT_EQ(nodes, g.nodes().size());
  EXPECT_EQ(thunks, g.stats().thunks);
}

TEST(CriticalPathEdge, EmptyGraph) {
  const auto cp = analysis::critical_path(cpg::Graph{});
  EXPECT_EQ(cp.length, 0u);
  EXPECT_TRUE(cp.nodes.empty());
}

}  // namespace
