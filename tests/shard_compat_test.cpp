// Cross-version store compatibility.
//
// Shard files are versioned per file, and an append keeps prior files
// byte-identical, so one store can mix generations. This test pins
// the two sides of that contract: (1) a store rewritten through the
// v2 writer shims (serialize_shard's and serialize_manifest's version
// parameters -- no checksums anywhere) loads in this build and serves
// the exact reply stream of the v3 store it came from; (2) files
// stamped with a future version fail with a typed kInvalidArgument
// naming the version range this build reads -- and a store serving
// such a file quarantines it as kUnavailable -- never a misparse.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "history_fixtures.h"
#include "query/engine.h"
#include "query/wire.h"
#include "shard/engine.h"
#include "shard/format.h"
#include "shard/planner.h"
#include "shard/store.h"
#include "util/parallel.h"

namespace {

using namespace inspector;
using namespace inspector::query;
namespace fixtures = inspector::fixtures;

/// A query batch with paginated cursors, serialized to wire bytes --
/// the same shape shard_property_test.cpp compares across shard and
/// worker counts.
std::string serialized_session(QueryEngine& engine, cpg::NodeId last,
                               std::uint64_t first_page) {
  const auto paged = [](Query q, std::uint64_t page_size) {
    QueryOptions options;
    options.page_size = page_size;
    return QueryEngine::BatchItem{std::move(q), options};
  };
  const std::vector<QueryEngine::BatchItem> items = {
      paged(BackwardSliceQuery{last}, 7),
      paged(ForwardSliceQuery{0}, 5),
      paged(RacesQuery{}, 13),
      paged(TaintQuery{{0, 3, 7}, true}, 9),
      paged(CriticalPathQuery{}, 6),
      {StatsQuery{}, {}},
      {HappensBeforeQuery{0, last}, {}},
      paged(PageAccessorsQuery{first_page}, 4),
      paged(LatestWritersQuery{last}, 3),
  };
  const auto replies = engine.run_batch(QueryEngine::kDefaultSession, items);

  std::string out;
  std::uint64_t id = 1;
  std::vector<std::uint64_t> cursors;
  for (const auto& reply : replies) {
    out += wire::serialize_reply(id++, reply);
    out += '\n';
    if (reply.ok() && reply->cursor != 0) cursors.push_back(reply->cursor);
  }
  for (const std::uint64_t cursor : cursors) {
    while (true) {
      const auto page = engine.next(cursor);
      out += wire::serialize_reply(id++, page);
      out += '\n';
      if (!page.ok() || !page->has_more) break;
    }
  }
  return out;
}

/// Rewrite every shard file of the store at `dir` through the v2
/// writer shim and recommit the manifest -- through the v2 manifest
/// shim as well, so the result is exactly the store a v2-era build
/// would have written: no per-shard file checksums, no manifest
/// self-checksum. Loading it exercises kManifestMinReadVersion and the
/// checksum-unknown (file_checksum == 0) skip path end to end.
void downgrade_store_to_v2(const std::string& dir) {
  auto manifest_read = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest_read.ok()) << manifest_read.status().message();
  shard::Manifest manifest = std::move(manifest_read).value();
  for (shard::ShardInfo& info : manifest.shards) {
    auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok()) << data.status().message();
    std::uint64_t decoded = 0;
    const std::vector<std::uint8_t> bytes =
        shard::serialize_shard(*data, info.codec, &decoded, /*version=*/2);
    ASSERT_TRUE(
        shard::write_file_bytes(dir + "/" + info.file, bytes).ok());
    info.byte_size = bytes.size();
    info.decoded_bytes = decoded;
  }
  ASSERT_TRUE(
      shard::replace_file_bytes(
          dir + "/" + shard::kManifestFileName,
          shard::serialize_manifest(manifest, /*version=*/2))
          .ok());
}

class ShardCompat : public ::testing::TestWithParam<shard::ShardCodec> {};

TEST_P(ShardCompat, V2StoreServesTheSameReplyBytesAsV3) {
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(77);
  const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
  const std::uint64_t first_page =
      source.page_count() > 0 ? source.pages()[0] : 0;

  std::string reference;
  {
    QueryEngine engine(std::make_shared<const cpg::Graph>(source));
    reference = serialized_session(engine, last, first_page);
  }

  const std::string dir = ::testing::TempDir() + "shard_compat_v2_" +
                          std::to_string(static_cast<int>(GetParam()));
  const auto manifest =
      shard::write_store(source, dir, shard::PlanOptions{3}, GetParam());
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();

  // The freshly written v3 store matches the unsharded engine...
  {
    auto store = shard::ShardStore::open(dir);
    ASSERT_TRUE(store.ok()) << store.status().message();
    shard::ShardedQueryEngine engine(std::move(store).value());
    EXPECT_EQ(serialized_session(engine, last, first_page), reference);
  }

  // ...and so does the same store downgraded to v2 files.
  downgrade_store_to_v2(dir);
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok()) << store.status().message();
  shard::ShardedQueryEngine engine(std::move(store).value());
  EXPECT_EQ(serialized_session(engine, last, first_page), reference);
}

INSTANTIATE_TEST_SUITE_P(Codecs, ShardCompat,
                         ::testing::Values(shard::ShardCodec::kRaw,
                                           shard::ShardCodec::kLz));

TEST(ShardCompatErrors, V2FilesAreSmallerWhenRewrittenAsV3) {
  // Not a benchmark -- just the directional claim the format doc
  // makes: the varint packing shrinks the encoded file even before
  // the LZ codec sees the lower-entropy stream.
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(78);
  const std::string dir = ::testing::TempDir() + "shard_compat_size";
  ASSERT_TRUE(shard::write_store(source, dir, shard::PlanOptions{2}).ok());
  auto manifest = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  std::uint64_t v3_total = 0;
  std::uint64_t v2_total = 0;
  for (const shard::ShardInfo& info : manifest->shards) {
    auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok());
    v3_total += serialize_shard(*data, info.codec, nullptr, 3).size();
    v2_total += serialize_shard(*data, info.codec, nullptr, 2).size();
  }
  EXPECT_LT(v3_total, v2_total);
}

TEST(ShardCompatErrors, FutureShardVersionIsATypedError) {
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(79);
  const std::string dir = ::testing::TempDir() + "shard_compat_future";
  ASSERT_TRUE(shard::write_store(source, dir, shard::PlanOptions{2}).ok());
  auto manifest = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  const shard::ShardInfo& info = manifest->shards.front();

  auto bytes = shard::read_file_bytes(dir + "/" + info.file);
  ASSERT_TRUE(bytes.ok());
  // The header is magic u32 + version u32, little-endian.
  bytes.value()[4] =
      static_cast<std::uint8_t>(shard::kShardFormatVersion + 1);
  const auto decoded = shard::deserialize_shard(*bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos)
      << decoded.status().message();

  // A store whose file on disk carries the future version quarantines
  // the shard at lazy load: the terminal failure (here the manifest's
  // whole-file checksum, which the edit also broke) comes back as
  // kUnavailable naming the shard and its file.
  ASSERT_TRUE(shard::write_file_bytes(dir + "/" + info.file, *bytes).ok());
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok()) << store.status().message();
  const auto loaded = store.value()->load(0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(loaded.status().message().find("quarantined"), std::string::npos)
      << loaded.status().message();
  // The quarantine is sticky: the same typed error, no new disk reads.
  const auto again = store.value()->load(0);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().message(), loaded.status().message());
  EXPECT_EQ(store.value()->stats().quarantined_shards, 1u);
}

TEST(ShardCompatErrors, FutureManifestVersionIsATypedError) {
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(80);
  const std::string dir = ::testing::TempDir() + "shard_compat_manifest";
  ASSERT_TRUE(shard::write_store(source, dir, shard::PlanOptions{2}).ok());
  const std::string path = dir + "/" + shard::kManifestFileName;
  auto bytes = shard::read_file_bytes(path);
  ASSERT_TRUE(bytes.ok());
  bytes.value()[4] =
      static_cast<std::uint8_t>(shard::kManifestFormatVersion + 1);
  ASSERT_TRUE(shard::replace_file_bytes(path, *bytes).ok());
  const auto store = shard::ShardStore::open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
