// CPG serialization round-trip and text export tests.
#include <gtest/gtest.h>

#include "cpg/recorder.h"
#include "cpg/serialize.h"

namespace {

using namespace inspector::cpg;
namespace sync = inspector::sync;

using inspector::PageSet;
constexpr sync::ObjectId kM = sync::make_object_id(sync::ObjectKind::kMutex, 1);

Graph sample_graph() {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.thread_started(1, 0);
  rec.on_branch(0, {0x1000, 0x1040, true, false});
  rec.on_branch(0, {0x1050, 0x2000, true, true});
  rec.end_subcomputation(0, PageSet{1, 2}, PageSet{3},
                         {sync::SyncEventKind::kMutexUnlock, kM});
  rec.on_release(0, kM);
  rec.on_acquire(1, kM);
  rec.record_schedule_event(1, kM, sync::SyncEventKind::kMutexLock);
  rec.end_subcomputation(1, PageSet{3}, PageSet{4},
                         {sync::SyncEventKind::kMutexLock, kM});
  rec.thread_exiting(0, PageSet{}, PageSet{});
  rec.thread_exiting(1, PageSet{9}, PageSet{});
  return std::move(rec).finalize();
}

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& x = a.nodes()[i];
    const auto& y = b.nodes()[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.thread, y.thread);
    EXPECT_EQ(x.alpha, y.alpha);
    EXPECT_EQ(x.clock, y.clock);
    EXPECT_EQ(x.read_set, y.read_set);
    EXPECT_EQ(x.write_set, y.write_set);
    EXPECT_EQ(x.thunks, y.thunks);
    EXPECT_EQ(static_cast<int>(x.end.kind), static_cast<int>(y.end.kind));
    EXPECT_EQ(x.start_seq, y.start_seq);
    EXPECT_EQ(x.end_seq, y.end_seq);
  }
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.schedule(), b.schedule());
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Graph g = sample_graph();
  const auto bytes = serialize(g);
  const Graph back = deserialize(bytes);
  expect_graphs_equal(g, back);
  std::string reason;
  EXPECT_TRUE(back.validate(&reason)) << reason;
}

TEST(Serialize, EmptyGraphRoundTrips) {
  Graph g;
  const Graph back = deserialize(serialize(g));
  EXPECT_TRUE(back.nodes().empty());
  EXPECT_TRUE(back.edges().empty());
}

TEST(Serialize, BadMagicThrows) {
  auto bytes = serialize(sample_graph());
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)deserialize(bytes), std::runtime_error);
}

TEST(Serialize, BadMagicIsATypedStatus) {
  auto bytes = serialize(sample_graph());
  bytes[0] ^= 0xFF;
  const auto result = deserialize_checked(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), inspector::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("bad magic"), std::string::npos)
      << result.status().message();
}

TEST(Serialize, WrongFormatVersionIsAClearError) {
  auto bytes = serialize(sample_graph());
  // The version field sits right after the 4-byte magic.
  bytes[4] = static_cast<std::uint8_t>(kCpgFormatVersion + 1);
  const auto result = deserialize_checked(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), inspector::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("format version"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find(
                std::to_string(kCpgFormatVersion + 1)),
            std::string::npos)
      << "the error should name the version it saw: "
      << result.status().message();
}

TEST(Serialize, HeaderlessVersion1FilesAreRejectedWithVersionError) {
  // A pre-version-field file (format generation 1) starts its node
  // count where version 2 keeps the version; the reader must call that
  // out as a version mismatch rather than misparse the layout.
  const Graph g = sample_graph();
  std::vector<std::uint8_t> legacy;
  const auto current = serialize(g);
  legacy.insert(legacy.end(), current.begin(), current.begin() + 4);  // magic
  legacy.insert(legacy.end(), current.begin() + 8, current.end());  // no ver
  const auto result = deserialize_checked(legacy);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("format version"),
            std::string::npos)
      << result.status().message();
}

TEST(Serialize, TruncationIsATypedStatus) {
  const auto bytes = serialize(sample_graph());
  std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + 16);
  const auto result = deserialize_checked(prefix);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), inspector::StatusCode::kInvalidArgument);
}

TEST(Serialize, TruncationThrows) {
  const auto bytes = serialize(sample_graph());
  for (std::size_t cut : {4u, 16u, 64u}) {
    ASSERT_LT(cut, bytes.size());
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)deserialize(prefix), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(Serialize, TextExportMentionsNodesAndEdges) {
  const Graph g = sample_graph();
  const std::string text = to_text(g);
  EXPECT_NE(text.find("sub-computations"), std::string::npos);
  EXPECT_NE(text.find("L0[0]"), std::string::npos);
  EXPECT_NE(text.find("L1[0]"), std::string::npos);
  EXPECT_NE(text.find("sync"), std::string::npos);
}

TEST(Serialize, DotExportIsWellFormed) {
  const Graph g = sample_graph();
  const std::string dot = to_dot(g);
  EXPECT_EQ(dot.find("digraph cpg {"), 0u);
  EXPECT_NE(dot.find("n0 ->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.rfind("}"), std::string::npos);
}

}  // namespace
