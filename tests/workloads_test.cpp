// Parameterized end-to-end tests over all 12 paper workloads: each must
// run under both modes, produce a valid CPG, agree on final memory
// state, and round-trip its PT trace through the decoder.
#include <gtest/gtest.h>

#include "core/inspector.h"
#include "memtrack/shared_memory.h"
#include "workloads/registry.h"

namespace {

using inspector::core::Inspector;
using inspector::workloads::all_workloads;
using inspector::workloads::InputSize;
using inspector::workloads::WorkloadConfig;

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.2;  // keep the suite fast; shapes don't depend on it
  return config;
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, NativeAndInspectorAgreeOnFinalState) {
  auto program = inspector::workloads::make_workload(GetParam(),
                                                     small_config());
  Inspector insp;
  const auto cmp = insp.compare(program);

  // Race-free programs must end in the same shared-memory state under
  // RC (INSPECTOR) and under direct shared memory (native).
  const auto native_pages = cmp.native.memory->page_ids();
  const auto traced_pages = cmp.traced.memory->page_ids();
  ASSERT_EQ(native_pages, traced_pages);
  for (std::uint64_t pid : native_pages) {
    const auto* a = cmp.native.memory->find_page(pid);
    const auto* b = cmp.traced.memory->find_page(pid);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*a, *b) << "page " << pid << " differs";
  }
}

TEST_P(WorkloadTest, CpgIsValidAndNonTrivial) {
  auto program = inspector::workloads::make_workload(GetParam(),
                                                     small_config());
  Inspector insp;
  const auto result = insp.run(program);
  ASSERT_TRUE(result.graph.has_value());
  std::string reason;
  EXPECT_TRUE(result.graph->validate(&reason)) << reason;

  const auto stats = result.graph->stats();
  EXPECT_GT(stats.nodes, 4u);
  EXPECT_GT(stats.sync_edges, 0u);
  EXPECT_GT(stats.thunks, 0u);
  EXPECT_GT(stats.read_pages + stats.write_pages, 0u);
  EXPECT_GE(stats.threads, 5u);  // main + 4 workers
}

TEST_P(WorkloadTest, PtTraceDecodesToRecordedThunks) {
  auto program = inspector::workloads::make_workload(GetParam(),
                                                     small_config());
  Inspector insp;
  const auto result = insp.run(program);
  const auto verification = Inspector::verify_pt(result);
  EXPECT_TRUE(verification.ok) << verification.detail;
  EXPECT_GT(verification.branches_checked, 0u);
  EXPECT_EQ(verification.gaps, 0u);
}

TEST_P(WorkloadTest, OverheadIsFiniteAndPositive) {
  auto program = inspector::workloads::make_workload(GetParam(),
                                                     small_config());
  Inspector insp;
  const auto cmp = insp.compare(program);
  EXPECT_GT(cmp.time_overhead(), 0.1);
  EXPECT_LT(cmp.time_overhead(), 100.0);
  EXPECT_GT(cmp.traced.stats.page_faults, 0u);
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& e : all_workloads()) names.push_back(e.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, WorkloadTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

// --- per-workload characteristics the paper calls out -----------------

TEST(WorkloadShapes, KmeansSpawnsHundredsOfThreads) {
  WorkloadConfig config;
  config.threads = 16;
  auto program = inspector::workloads::make_kmeans(config);
  Inspector insp;
  const auto result = insp.run(program);
  EXPECT_GT(result.stats.threads_spawned, 400u)
      << "kmeans respawns its fleet every iteration (§VII-A)";
}

TEST(WorkloadShapes, CannealHasMostFaults) {
  // The paper's configuration: 16 threads, full (simulated) inputs.
  WorkloadConfig config;
  config.threads = 16;
  config.scale = 1.0;
  Inspector insp;
  std::uint64_t canneal_faults = 0;
  std::uint64_t max_other = 0;
  for (const auto& entry : all_workloads()) {
    const auto result = insp.run(entry.make(config));
    if (entry.name == "canneal") {
      canneal_faults = result.stats.page_faults;
    } else {
      max_other = std::max(max_other, result.stats.page_faults);
    }
  }
  EXPECT_GT(canneal_faults, max_other)
      << "canneal tops the fault table (table 7)";
}

TEST(WorkloadShapes, LinearRegressionBeatsNative) {
  WorkloadConfig config;
  config.threads = 16;
  Inspector insp;
  const auto cmp =
      insp.compare(inspector::workloads::make_linear_regression(config));
  EXPECT_LT(cmp.time_overhead(), 1.0)
      << "false-sharing avoidance makes INSPECTOR faster (§VII-A)";
}

TEST(WorkloadShapes, SizedInputsGrowMonotonically) {
  for (const auto& name : inspector::workloads::sized_workload_names()) {
    WorkloadConfig small = {};
    small.size = InputSize::kSmall;
    WorkloadConfig large = {};
    large.size = InputSize::kLarge;
    const auto ps = inspector::workloads::make_workload(name, small);
    const auto pl = inspector::workloads::make_workload(name, large);
    EXPECT_LT(ps.input_bytes, pl.input_bytes) << name;
    EXPECT_LT(ps.total_ops(), pl.total_ops()) << name;
  }
}

TEST(WorkloadShapes, RegistryIsComplete) {
  const auto names = workload_names();
  EXPECT_EQ(names.size(), 12u);
  EXPECT_EQ(inspector::workloads::sized_workload_names().size(), 4u);
  EXPECT_THROW(
      (void)inspector::workloads::make_workload("nope", WorkloadConfig{}),
      std::out_of_range);
}

TEST(WorkloadShapes, ThreadCountIsRespected) {
  for (std::uint32_t threads : {2u, 8u}) {
    WorkloadConfig config;
    config.threads = threads;
    config.scale = 0.2;
    auto program = inspector::workloads::make_histogram(config);
    Inspector insp;
    const auto result = insp.run(program);
    EXPECT_EQ(result.stats.threads_spawned, threads + 1u);
  }
}

}  // namespace
