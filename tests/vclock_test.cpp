// Vector-clock unit + property tests (§IV-B's causality substrate).
#include <gtest/gtest.h>

#include <random>

#include "vclock/vector_clock.h"

namespace {

using inspector::vclock::Order;
using inspector::vclock::VectorClock;

TEST(VectorClock, DefaultIsZeroAndEqual) {
  VectorClock a;
  VectorClock b(4);
  EXPECT_EQ(a.compare(b), Order::kEqual);
  EXPECT_EQ(a.get(0), 0u);
  EXPECT_EQ(b.get(3), 0u);
}

TEST(VectorClock, TickOrdersSuccessors) {
  VectorClock a(2);
  VectorClock b = a;
  b.tick(0);
  EXPECT_EQ(a.compare(b), Order::kBefore);
  EXPECT_EQ(b.compare(a), Order::kAfter);
  EXPECT_TRUE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
}

TEST(VectorClock, IndependentTicksAreConcurrent) {
  VectorClock a(2);
  VectorClock b(2);
  a.tick(0);
  b.tick(1);
  EXPECT_EQ(a.compare(b), Order::kConcurrent);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(3);
  VectorClock b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 7);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, MergeMakesReleaseVisible) {
  // Release-acquire via an object clock: acquirer ends up after releaser.
  VectorClock releaser(2);
  releaser.set(0, 3);
  VectorClock object;
  object.merge(releaser);
  VectorClock acquirer(2);
  acquirer.set(1, 1);
  acquirer.merge(object);
  acquirer.tick(1);
  EXPECT_TRUE(releaser.happens_before(acquirer));
}

TEST(VectorClock, GrowsOnDemand) {
  VectorClock a;
  a.set(10, 4);
  EXPECT_EQ(a.size(), 11u);
  EXPECT_EQ(a.get(10), 4u);
  EXPECT_EQ(a.get(5), 0u);
  // Comparison across different widths treats missing slots as zero.
  VectorClock b(2);
  EXPECT_EQ(b.compare(a), Order::kBefore);
}

TEST(VectorClock, DifferentWidthEquality) {
  VectorClock a(2);
  VectorClock b(8);
  EXPECT_EQ(a.compare(b), Order::kEqual);
  b.set(7, 1);
  EXPECT_EQ(a.compare(b), Order::kBefore);
}

TEST(VectorClock, ToStringFormat) {
  VectorClock a(3);
  a.set(0, 2);
  a.set(2, 1);
  EXPECT_EQ(a.to_string(), "[2,0,1]");
}

TEST(VectorClock, MixedComponentsAreConcurrent) {
  VectorClock a(2), b(2);
  a.set(0, 2);
  a.set(1, 1);
  b.set(0, 1);
  b.set(1, 2);
  EXPECT_EQ(a.compare(b), Order::kConcurrent);
}

// --- property tests over random clocks --------------------------------

class VClockPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

VectorClock random_clock(std::mt19937_64& rng, std::size_t width,
                         std::uint64_t max) {
  VectorClock c(width);
  for (std::size_t i = 0; i < width; ++i) c.set(i, rng() % (max + 1));
  return c;
}

TEST_P(VClockPropertyTest, CompareIsAntisymmetric) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = random_clock(rng, 4, 3);
    const auto b = random_clock(rng, 4, 3);
    const auto ab = a.compare(b);
    const auto ba = b.compare(a);
    switch (ab) {
      case Order::kBefore: EXPECT_EQ(ba, Order::kAfter); break;
      case Order::kAfter: EXPECT_EQ(ba, Order::kBefore); break;
      case Order::kEqual: EXPECT_EQ(ba, Order::kEqual); break;
      case Order::kConcurrent: EXPECT_EQ(ba, Order::kConcurrent); break;
    }
  }
}

TEST_P(VClockPropertyTest, HappensBeforeIsTransitive) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = random_clock(rng, 4, 3);
    const auto b = random_clock(rng, 4, 3);
    const auto c = random_clock(rng, 4, 3);
    if (a.happens_before(b) && b.happens_before(c)) {
      EXPECT_TRUE(a.happens_before(c))
          << a.to_string() << " < " << b.to_string() << " < " << c.to_string();
    }
  }
}

TEST_P(VClockPropertyTest, MergeIsUpperBound) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = random_clock(rng, 4, 5);
    const auto b = random_clock(rng, 4, 5);
    VectorClock m = a;
    m.merge(b);
    EXPECT_NE(m.compare(a), Order::kBefore);
    EXPECT_NE(m.compare(b), Order::kBefore);
    // Least upper bound: every component equals one of the inputs'.
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_EQ(m.get(j), std::max(a.get(j), b.get(j)));
    }
  }
}

TEST_P(VClockPropertyTest, MergeIsIdempotentAndCommutative) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = random_clock(rng, 5, 7);
    const auto b = random_clock(rng, 5, 7);
    VectorClock ab = a;
    ab.merge(b);
    VectorClock ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    VectorClock aa = ab;
    aa.merge(ab);
    EXPECT_EQ(aa, ab);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VClockPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
