// Tests for the analysis worker pool (util/parallel.h): chunk
// coverage, the serial fast path, nesting, exception propagation,
// deterministic parallel_sort, and the thread-count configuration the
// analyses and CLI knobs build on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "history_fixtures.h"
#include "util/parallel.h"

namespace {

using namespace inspector;
using inspector::fixtures::ThreadCountGuard;

TEST(TaskPool, CoversEveryIndexExactlyOnce) {
  util::TaskPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> bad_worker{false};
  pool.parallel_for(0, kN, 7, [&](std::size_t b, std::size_t e, unsigned w) {
    if (w >= pool.worker_count()) bad_worker = true;
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  EXPECT_FALSE(bad_worker);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, SingleWorkerRunsInlineAsOneChunk) {
  util::TaskPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  int calls = 0;
  pool.parallel_for(3, 1000, 10,
                    [&](std::size_t b, std::size_t e, unsigned w) {
                      ++calls;
                      EXPECT_EQ(b, 3u);
                      EXPECT_EQ(e, 1000u);
                      EXPECT_EQ(w, 0u);
                    });
  EXPECT_EQ(calls, 1) << "serial path must not split the range";
}

TEST(TaskPool, EmptyRangeDoesNothing) {
  util::TaskPool pool(2);
  pool.parallel_for(5, 5, 1, [](std::size_t, std::size_t, unsigned) {
    FAIL() << "empty range must not invoke the body";
  });
}

TEST(TaskPool, NestedParallelForRunsInline) {
  util::TaskPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) {
      // A chunk that itself builds a Graph would re-enter the pool;
      // the inner loop must run inline rather than deadlock.
      pool.parallel_for(0, 4, 1,
                        [&](std::size_t ib, std::size_t ie, unsigned iw) {
                          EXPECT_EQ(iw, 0u);
                          total.fetch_add(static_cast<int>(ie - ib));
                        });
    }
  });
  EXPECT_EQ(total.load(), 8 * 4);
}

TEST(TaskPool, ExceptionsPropagateToCaller) {
  util::TaskPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1,
                        [](std::size_t b, std::size_t, unsigned) {
                          if (b == 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t, std::size_t, unsigned) {
    ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), 100);
}

TEST(TaskPool, ParallelSortMatchesSerialSort) {
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> data(100'000);
  for (auto& v : data) v = rng() % 1000;  // many duplicates
  // Total order: (value, original position via stable pairing) -- here
  // plain uint64 values with duplicates, so compare values only; the
  // contract requires a strict total order over *distinct* elements,
  // and equal integers are indistinguishable, so std::sort agreement
  // still holds element-wise.
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    util::TaskPool pool(workers);
    auto v = data;
    util::parallel_sort(pool, v, std::less<>{});
    EXPECT_EQ(v, expected) << workers << " workers";
  }
}

TEST(TaskPool, ParallelSortHandlesCappedChunkCounts) {
  // Regression: sizes just above the serial cutoff cap the chunk count
  // below the worker count (e.g. 8000/1024 = 7 chunks at 8 workers);
  // the cap must stay a power of two or the pairwise merge tree leaves
  // the last run unmerged.
  util::TaskPool pool(8);
  std::mt19937_64 rng(7);
  for (std::size_t size : {4097u, 5000u, 7000u, 8000u, 9000u, 12000u}) {
    std::vector<std::uint64_t> v(size);
    for (auto& x : v) x = rng();
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    util::parallel_sort(pool, v, std::less<>{});
    EXPECT_EQ(v, expected) << "size " << size;
  }
}

TEST(TaskPool, WorkerLocalAccumulatesWithoutLoss) {
  util::TaskPool pool(4);
  util::WorkerLocal<std::uint64_t> sums(pool);
  constexpr std::size_t kN = 100'000;
  pool.parallel_for(0, kN, 128,
                    [&](std::size_t b, std::size_t e, unsigned w) {
                      for (std::size_t i = b; i < e; ++i) sums[w] += i;
                    });
  std::uint64_t total = 0;
  for (unsigned w = 0; w < pool.worker_count(); ++w) total += sums[w];
  EXPECT_EQ(total, kN * (kN - 1) / 2);
}

TEST(AnalysisThreads, ConfigurationRoundTrips) {
  ThreadCountGuard guard;
  util::set_analysis_threads(3);
  EXPECT_EQ(util::analysis_threads(), 3u);
  EXPECT_EQ(util::shared_pool()->worker_count(), 3u);
  // The shared pool is rebuilt on a size change, old handles stay valid.
  const auto old = util::shared_pool();
  util::set_analysis_threads(2);
  EXPECT_EQ(util::shared_pool()->worker_count(), 2u);
  EXPECT_EQ(old->worker_count(), 3u);
  // 0 resets to the environment/hardware default, which is always >= 1.
  util::set_analysis_threads(0);
  EXPECT_GE(util::analysis_threads(), 1u);
}

}  // namespace
