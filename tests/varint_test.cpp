// Varint/delta codec tests: round-trip properties over randomized
// monotone and arbitrary sequences, the typed-error cases (truncated
// varint, overlong encoding, non-monotone delta underflow at encode,
// accumulator overflow at decode, u64 max), and a bit-flip sweep in
// the spirit of compress_test.cpp -- the codec has no checksum, so the
// sweep asserts canonicality instead: every flipped stream either
// fails typed or decodes to a *different* sequence whose unique
// re-encoding reproduces the flipped bytes exactly.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <span>

#include "util/varint.h"

namespace {

using inspector::Status;
using inspector::StatusCode;
using namespace inspector::util;

std::uint64_t decode_one(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  const Status st = get_uvarint(bytes, pos, v);
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(pos, bytes.size());
  return v;
}

TEST(Varint, SingleValueRoundTrips) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{127}, std::uint64_t{128},
                          std::uint64_t{16383}, std::uint64_t{16384},
                          std::uint64_t{1} << 32, ~std::uint64_t{0} - 1,
                          ~std::uint64_t{0}}) {
    std::vector<std::uint8_t> bytes;
    put_uvarint(bytes, v);
    EXPECT_EQ(decode_one(bytes), v);
  }
}

TEST(Varint, EncodedSizeMatchesMagnitude) {
  std::vector<std::uint8_t> bytes;
  put_uvarint(bytes, 0x7F);
  EXPECT_EQ(bytes.size(), 1u);
  bytes.clear();
  put_uvarint(bytes, 0x80);
  EXPECT_EQ(bytes.size(), 2u);
  bytes.clear();
  put_uvarint(bytes, ~std::uint64_t{0});
  EXPECT_EQ(bytes.size(), kMaxVarintBytes);
}

TEST(Varint, TruncatedIsTypedError) {
  std::vector<std::uint8_t> bytes;
  put_uvarint(bytes, 300);  // two bytes
  ASSERT_EQ(bytes.size(), 2u);
  bytes.resize(1);  // continuation bit set, no next byte
  std::size_t pos = 0;
  std::uint64_t v = 0;
  const Status st = get_uvarint(bytes, pos, v);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("truncated varint"), std::string::npos)
      << st.message();
  // The empty buffer is the degenerate truncation.
  pos = 0;
  EXPECT_FALSE(get_uvarint(std::span<const std::uint8_t>{}, pos, v).ok());
}

TEST(Varint, OverlongEncodingIsTypedError) {
  // 0x80 0x00 decodes to 0 but spends two bytes: non-canonical.
  const std::vector<std::uint8_t> overlong = {0x80, 0x00};
  std::size_t pos = 0;
  std::uint64_t v = 0;
  const Status st = get_uvarint(overlong, pos, v);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("overlong"), std::string::npos) << st.message();
  // A longer zero tail is just as overlong.
  const std::vector<std::uint8_t> longer = {0xFF, 0x80, 0x00};
  pos = 0;
  EXPECT_FALSE(get_uvarint(longer, pos, v).ok());
}

TEST(Varint, WiderThan64BitsIsTypedError) {
  // Ten continuation bytes followed by anything: > 64 bits of payload.
  std::vector<std::uint8_t> wide(10, 0xFF);
  wide.push_back(0x01);
  std::size_t pos = 0;
  std::uint64_t v = 0;
  const Status st = get_uvarint(wide, pos, v);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overflows u64"), std::string::npos)
      << st.message();
  // A 10th byte carrying more than bit 63 overflows too.
  std::vector<std::uint8_t> top(9, 0xFF);
  top.push_back(0x02);
  pos = 0;
  EXPECT_FALSE(get_uvarint(top, pos, v).ok());
  // ...while exactly bit 63 is u64 max, which must round-trip.
  std::vector<std::uint8_t> max_bytes;
  put_uvarint(max_bytes, ~std::uint64_t{0});
  EXPECT_EQ(decode_one(max_bytes), ~std::uint64_t{0});
}

TEST(Varint, SequentialDecodeAdvancesPosition) {
  std::vector<std::uint8_t> bytes;
  const std::vector<std::uint64_t> values = {0, 127, 128, 99999,
                                             ~std::uint64_t{0}};
  for (std::uint64_t v : values) put_uvarint(bytes, v);
  std::size_t pos = 0;
  for (std::uint64_t expected : values) {
    std::uint64_t v = 0;
    ASSERT_TRUE(get_uvarint(bytes, pos, v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(Varint, ZigzagFoldsSmallMagnitudes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                         std::int64_t{1} << 40, -(std::int64_t{1} << 40),
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

std::vector<std::uint64_t> random_monotone(std::mt19937_64& rng,
                                           std::size_t len,
                                           std::uint64_t max_gap) {
  std::vector<std::uint64_t> v;
  v.reserve(len);
  std::uint64_t cur = rng() % 1000;
  for (std::size_t i = 0; i < len; ++i) {
    v.push_back(cur);
    cur += 1 + rng() % max_gap;
  }
  return v;
}

TEST(Monotone, RandomizedSequencesRoundTrip) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = rng() % 300;
    // Mix dense (gap 1-2: consecutive pages) and sparse sequences.
    const std::uint64_t max_gap = iter % 2 == 0 ? 2 : 1 + rng() % (1 << 20);
    const auto v = random_monotone(rng, len, max_gap);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(put_monotone(bytes, v).ok());
    std::size_t pos = 0;
    std::vector<std::uint64_t> back;
    const Status st = get_monotone(bytes, pos, back);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(Monotone, DenseSequencesPackToOneBytePerElement) {
  // Consecutive ids (delta-1 == 0) are the common page-bucket shape.
  std::vector<std::uint64_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 5000 + i;
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(put_monotone(bytes, v).ok());
  // count (2B) + first value (2B) + 999 zero deltas (1B each).
  EXPECT_LE(bytes.size(), 4 + (v.size() - 1));
  // vs 8 bytes per element raw: an 8x shrink on this shape.
  EXPECT_LT(bytes.size() * 7, v.size() * 8);
}

TEST(Monotone, U64MaxRoundTrips) {
  const std::vector<std::uint64_t> v = {0, 1, ~std::uint64_t{0} - 1,
                                        ~std::uint64_t{0}};
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(put_monotone(bytes, v).ok());
  std::size_t pos = 0;
  std::vector<std::uint64_t> back;
  ASSERT_TRUE(get_monotone(bytes, pos, back).ok());
  EXPECT_EQ(back, v);
}

TEST(Monotone, NonMonotoneInputIsATypedEncodeError) {
  std::vector<std::uint8_t> bytes;
  const std::vector<std::uint64_t> descending = {5, 3};
  const Status st = put_monotone(bytes, descending);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("delta underflow"), std::string::npos)
      << st.message();
  // Equal neighbors violate *strict* ascent the same way.
  bytes.clear();
  const std::vector<std::uint64_t> equal = {7, 7};
  EXPECT_FALSE(put_monotone(bytes, equal).ok());
}

TEST(Monotone, AccumulatorOverflowIsATypedDecodeError) {
  // Hand-craft: first value u64 max, then one more delta.
  std::vector<std::uint8_t> bytes;
  put_uvarint(bytes, 2);  // count
  put_uvarint(bytes, ~std::uint64_t{0});
  put_uvarint(bytes, 0);  // would need max + 1
  std::size_t pos = 0;
  std::vector<std::uint64_t> out;
  const Status st = get_monotone(bytes, pos, out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("overflows u64"), std::string::npos)
      << st.message();
}

TEST(Monotone, ImplausibleCountIsRejectedBeforeAllocating) {
  std::vector<std::uint8_t> bytes;
  put_uvarint(bytes, ~std::uint64_t{0} / 2);  // count far beyond the bytes
  put_uvarint(bytes, 1);
  std::size_t pos = 0;
  std::vector<std::uint64_t> out;
  const Status st = get_monotone(bytes, pos, out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("implausible"), std::string::npos)
      << st.message();
}

TEST(Monotone, TruncatedSequenceIsATypedError) {
  std::mt19937_64 rng(7);
  const auto v = random_monotone(rng, 50, 1000);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(put_monotone(bytes, v).ok());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    std::size_t pos = 0;
    std::vector<std::uint64_t> out;
    EXPECT_FALSE(get_monotone(prefix, pos, out).ok()) << "cut at " << cut;
  }
}

TEST(ZigzagDelta, ArbitrarySequencesRoundTrip) {
  std::mt19937_64 rng(9);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint64_t> v(rng() % 200);
    for (auto& x : v) {
      // Near-sorted small values (rank sidecars) and raw u64 noise.
      x = iter % 2 == 0 ? rng() % 100000 : rng();
    }
    std::vector<std::uint8_t> bytes;
    put_zigzag_delta(bytes, v);
    std::size_t pos = 0;
    std::vector<std::uint64_t> back;
    const Status st = get_zigzag_delta(bytes, pos, back);
    ASSERT_TRUE(st.ok()) << st.message();
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(ZigzagDelta, WrappingDeltasRoundTrip) {
  // Max <-> min swings wrap mod 2^64 by design.
  const std::vector<std::uint64_t> v = {~std::uint64_t{0}, 0,
                                        ~std::uint64_t{0}, 1, 0};
  std::vector<std::uint8_t> bytes;
  put_zigzag_delta(bytes, v);
  std::size_t pos = 0;
  std::vector<std::uint64_t> back;
  ASSERT_TRUE(get_zigzag_delta(bytes, pos, back).ok());
  EXPECT_EQ(back, v);
}

TEST(BitFlip, SweepNeverDecodesToTheOriginal) {
  // No checksum here, so the guarantee is canonicality, not
  // detection: a flipped stream either fails typed or decodes to a
  // different sequence whose unique re-encoding IS the flipped bytes.
  std::mt19937_64 rng(1234);
  const auto v = random_monotone(rng, 40, 1 << 14);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(put_monotone(bytes, v).ok());
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    std::size_t pos = 0;
    std::vector<std::uint64_t> out;
    const Status st = get_monotone(corrupt, pos, out);
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "bit " << bit;
      continue;
    }
    // Decoded cleanly: it must not alias the original sequence, and
    // the decode must have consumed exactly the flipped stream whose
    // re-encoding reproduces it byte for byte.
    EXPECT_NE(out, v) << "bit " << bit << " flipped silently";
    std::vector<std::uint8_t> reencoded;
    ASSERT_TRUE(put_monotone(reencoded, out).ok());
    std::vector<std::uint8_t> consumed(
        corrupt.begin(), corrupt.begin() + static_cast<long>(pos));
    EXPECT_EQ(reencoded, consumed) << "bit " << bit;
  }
}

}  // namespace
