// CPG query tests on hand-crafted graphs: data dependencies, latest
// writers, slices, topological order, validation (§IV-A III).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "cpg/graph.h"

namespace {

using namespace inspector::cpg;
namespace sync = inspector::sync;

// Build the paper's Figure-1 example:
//   T1.a: reads {y}, writes {x,y}   (pages: y=1, x=2)
//   T2.a: reads {x}, writes {y}     after T1.a (lock order)
//   T1.b: reads {y}, writes {y}     after T2.a
SubComputation node(NodeId id, ThreadId t, std::uint64_t alpha,
                    std::vector<std::uint64_t> clock,
                    std::vector<std::uint64_t> reads,
                    std::vector<std::uint64_t> writes) {
  SubComputation n;
  n.id = id;
  n.thread = t;
  n.alpha = alpha;
  for (std::size_t i = 0; i < clock.size(); ++i) n.clock.set(i, clock[i]);
  std::sort(reads.begin(), reads.end());
  std::sort(writes.begin(), writes.end());
  n.read_set = std::move(reads);
  n.write_set = std::move(writes);
  return n;
}

Graph figure1_graph() {
  constexpr std::uint64_t y = 1, x = 2;
  std::vector<SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1, 0}, {y}, {x, y}));  // T1.a
  nodes.push_back(node(1, 1, 0, {1, 1}, {x}, {y}));     // T2.a
  nodes.push_back(node(2, 0, 1, {2, 1}, {y}, {y}));     // T1.b
  std::vector<Edge> edges = {
      {0, 2, EdgeKind::kControl, 0},
      {0, 1, EdgeKind::kSync, 99},
      {1, 2, EdgeKind::kSync, 99},
  };
  return Graph(std::move(nodes), std::move(edges), {});
}

TEST(Graph, Figure1HappensBefore) {
  const Graph g = figure1_graph();
  EXPECT_TRUE(g.happens_before(0, 1));
  EXPECT_TRUE(g.happens_before(1, 2));
  EXPECT_TRUE(g.happens_before(0, 2));
  EXPECT_FALSE(g.happens_before(2, 0));
  EXPECT_FALSE(g.concurrent(0, 1));
}

TEST(Graph, Figure1DataDependencies) {
  const Graph g = figure1_graph();
  // T2.a reads x which T1.a wrote.
  const auto deps1 = g.data_dependencies(1);
  ASSERT_EQ(deps1.size(), 1u);
  EXPECT_EQ(deps1[0].from, 0u);
  EXPECT_EQ(deps1[0].object, 2u);  // page of x
  // T1.b reads y; both T1.a and T2.a wrote it.
  const auto deps2 = g.data_dependencies(2);
  ASSERT_EQ(deps2.size(), 2u);
}

TEST(Graph, Figure1LatestWriterMasksEarlier) {
  const Graph g = figure1_graph();
  // For T1.b's read of y, T2.a is the latest writer (T1.a is masked:
  // it happens-before T2.a).
  const auto latest = g.latest_writers(2);
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].from, 1u);
  EXPECT_EQ(latest[0].object, 1u);
}

TEST(Graph, ConcurrentWritersBothLatest) {
  // Two concurrent writers of the same page: neither masks the other.
  std::vector<SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1, 0, 0}, {}, {7}));
  nodes.push_back(node(1, 1, 0, {0, 1, 0}, {}, {7}));
  nodes.push_back(node(2, 2, 0, {1, 1, 1}, {7}, {}));
  Graph g({nodes}, {}, {});
  const auto latest = g.latest_writers(2);
  EXPECT_EQ(latest.size(), 2u);
}

TEST(Graph, WritersAndReadersOfPage) {
  const Graph g = figure1_graph();
  EXPECT_EQ(g.writers_of_page(1), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(g.readers_of_page(2), (std::vector<NodeId>{1}));
  EXPECT_TRUE(g.writers_of_page(55).empty());
}

TEST(Graph, BackwardSliceFollowsDataAndSync) {
  const Graph g = figure1_graph();
  const auto slice = g.backward_slice(2);
  EXPECT_EQ(slice, (std::vector<NodeId>{0, 1, 2}))
      << "the debugging query: why is y's state what it is";
  const auto slice0 = g.backward_slice(0);
  EXPECT_EQ(slice0, (std::vector<NodeId>{0}));
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  const Graph g = figure1_graph();
  const auto order = g.topological_view();
  ASSERT_EQ(order.size(), 3u);
  std::vector<std::size_t> pos(3);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& e : g.edges()) {
    EXPECT_LT(pos[e.from], pos[e.to]);
  }
}

TEST(Graph, CycleDetection) {
  std::vector<SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1}, {}, {}));
  nodes.push_back(node(1, 0, 1, {2}, {}, {}));
  std::vector<Edge> edges = {
      {0, 1, EdgeKind::kSync, 0},
      {1, 0, EdgeKind::kSync, 0},
  };
  Graph g(std::move(nodes), std::move(edges), {});
  EXPECT_THROW((void)g.topological_view(), std::logic_error);
  std::string reason;
  EXPECT_FALSE(g.validate(&reason));
}

TEST(Graph, ValidateCatchesBadControlEdge) {
  std::vector<SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1, 0}, {}, {}));
  nodes.push_back(node(1, 1, 0, {0, 1}, {}, {}));
  std::vector<Edge> edges = {{0, 1, EdgeKind::kControl, 0}};
  Graph g(std::move(nodes), std::move(edges), {});
  std::string reason;
  EXPECT_FALSE(g.validate(&reason));
  EXPECT_NE(reason.find("control edge"), std::string::npos);
}

TEST(Graph, ValidateCatchesBackwardSyncEdge) {
  std::vector<SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1, 0}, {}, {}));
  nodes.push_back(node(1, 1, 0, {0, 1}, {}, {}));  // concurrent with 0
  std::vector<Edge> edges = {{0, 1, EdgeKind::kSync, 0}};
  Graph g(std::move(nodes), std::move(edges), {});
  std::string reason;
  EXPECT_FALSE(g.validate(&reason));
}

TEST(Graph, ThreadNodesOrderedByAlpha) {
  const Graph g = figure1_graph();
  const auto t0 = g.thread_nodes(0);
  ASSERT_EQ(t0.size(), 2u);
  EXPECT_EQ(t0[0], 0u);
  EXPECT_EQ(t0[1], 2u);
  EXPECT_TRUE(g.thread_nodes(9).empty());
  EXPECT_EQ(g.find(0, 1), std::optional<NodeId>{2});
  EXPECT_EQ(g.find(0, 5), std::nullopt);
}

TEST(Graph, StatsAggregate) {
  const Graph g = figure1_graph();
  const auto s = g.stats();
  EXPECT_EQ(s.nodes, 3u);
  EXPECT_EQ(s.control_edges, 1u);
  EXPECT_EQ(s.sync_edges, 2u);
  EXPECT_EQ(s.threads, 2u);
  EXPECT_EQ(s.read_pages, 3u);
  EXPECT_EQ(s.write_pages, 4u);
}

TEST(Graph, ConstructorRejectsUnknownEdgeEndpoints) {
  // Crafted/corrupt inputs (e.g. a bad .cpg file) must not reach the
  // CSR builders, which write through edge endpoints.
  std::vector<SubComputation> nodes;
  nodes.push_back(node(0, 0, 0, {1}, {}, {}));
  std::vector<Edge> edges = {{0, 7, EdgeKind::kSync, 0}};
  EXPECT_THROW((Graph{std::move(nodes), std::move(edges), {}}),
               std::invalid_argument);
}

TEST(Graph, EmptyGraphIsValid) {
  Graph g;
  std::string reason;
  EXPECT_TRUE(g.validate(&reason));
  EXPECT_TRUE(g.topological_view().empty());
}

TEST(Graph, DeprecatedCopyingOrderMatchesView) {
  // The deprecated accessor must keep returning the same order until it
  // is removed; new code uses topological_view().
  const Graph g = figure1_graph();
  const auto view = g.topological_view();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto copy = g.topological_order();
#pragma GCC diagnostic pop
  EXPECT_EQ(copy, std::vector<NodeId>(view.begin(), view.end()));
}

}  // namespace
