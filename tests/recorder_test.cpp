// Recorder tests: Algorithms 1 and 2 (thread clocks, sync-object
// clocks, sub-computation clocks, happens-before edges).
#include <gtest/gtest.h>

#include <unordered_set>

#include "cpg/recorder.h"

namespace {

using namespace inspector::cpg;
namespace sync = inspector::sync;

constexpr sync::ObjectId kM = sync::make_object_id(sync::ObjectKind::kMutex, 1);
constexpr sync::ObjectId kB =
    sync::make_object_id(sync::ObjectKind::kBarrier, 1);

using inspector::PageSet;

EndReason lock_end(sync::ObjectId m) {
  return {sync::SyncEventKind::kMutexLock, m};
}
EndReason unlock_end(sync::ObjectId m) {
  return {sync::SyncEventKind::kMutexUnlock, m};
}

TEST(Recorder, SingleThreadControlChain) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.end_subcomputation(0, PageSet{1, 2}, PageSet{3}, lock_end(kM));
  rec.end_subcomputation(0, PageSet{3}, PageSet{}, unlock_end(kM));
  rec.thread_exiting(0, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();

  ASSERT_EQ(g.nodes().size(), 3u);
  EXPECT_EQ(g.node(0).alpha, 0u);
  EXPECT_EQ(g.node(1).alpha, 1u);
  EXPECT_EQ(g.node(0).read_set, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(g.node(0).write_set, (std::vector<std::uint64_t>{3}));

  // Control edges chain consecutive sub-computations.
  std::size_t control = 0;
  for (const auto& e : g.edges()) {
    if (e.kind == EdgeKind::kControl) {
      EXPECT_EQ(e.from + 1, e.to);
      ++control;
    }
  }
  EXPECT_EQ(control, 2u);
  EXPECT_TRUE(g.happens_before(0, 1));
  EXPECT_TRUE(g.happens_before(1, 2));
  EXPECT_TRUE(g.happens_before(0, 2)) << "transitivity within a thread";
}

TEST(Recorder, MutexReleaseAcquireCreatesSyncEdge) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.thread_started(1, 0);

  // T0: work -> unlock(M).   T1: lock(M) -> work.
  rec.end_subcomputation(0, PageSet{}, PageSet{10}, unlock_end(kM));
  rec.on_release(0, kM);
  rec.on_acquire(1, kM);
  rec.end_subcomputation(1, PageSet{10}, PageSet{}, lock_end(kM));

  rec.thread_exiting(0, PageSet{}, PageSet{});
  rec.thread_exiting(1, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();

  const NodeId writer = *g.find(0, 0);
  const NodeId reader = *g.find(1, 0);
  EXPECT_TRUE(g.happens_before(writer, reader));

  bool found = false;
  for (const auto& e : g.edges()) {
    if (e.kind == EdgeKind::kSync && e.from == writer && e.to == reader) {
      EXPECT_EQ(e.object, kM);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "release->acquire edge missing";
}

TEST(Recorder, NoSyncMeansConcurrent) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.thread_started(1, 0);
  rec.end_subcomputation(0, PageSet{}, PageSet{}, lock_end(kM));
  rec.end_subcomputation(1, PageSet{}, PageSet{}, lock_end(kM));
  rec.thread_exiting(0, PageSet{}, PageSet{});
  rec.thread_exiting(1, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();
  EXPECT_TRUE(g.concurrent(*g.find(0, 0), *g.find(1, 0)));
}

TEST(Recorder, ParentChildLifecycleOrdering) {
  Recorder rec;
  rec.thread_started(0, 0);
  // Parent does some work, then creates thread 1.
  rec.end_subcomputation(0, PageSet{}, PageSet{5},
                         {sync::SyncEventKind::kThreadCreate, 0});
  rec.on_release(0, sync::thread_lifecycle_object(1));
  rec.thread_started(1, 0);
  rec.end_subcomputation(1, PageSet{5}, PageSet{}, lock_end(kM));
  rec.thread_exiting(1, PageSet{}, PageSet{});
  // Parent joins: acquire on the child's lifecycle object.
  rec.end_subcomputation(0, PageSet{}, PageSet{},
                         {sync::SyncEventKind::kThreadJoin,
                          sync::thread_lifecycle_object(1)});
  rec.on_acquire(0, sync::thread_lifecycle_object(1));
  rec.thread_exiting(0, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();

  const NodeId parent_pre = *g.find(0, 0);
  const NodeId child_work = *g.find(1, 0);
  const NodeId parent_post = *g.find(0, 2);
  EXPECT_TRUE(g.happens_before(parent_pre, child_work))
      << "everything before create() precedes the child";
  EXPECT_TRUE(g.happens_before(child_work, parent_post))
      << "everything in the child precedes join()";
}

TEST(Recorder, BarrierIsAllToAll) {
  Recorder rec;
  for (ThreadId t : {0u, 1u, 2u}) rec.thread_started(t, t);
  // All three threads arrive at the barrier: release all, then acquire
  // all (the executor's protocol for barrier_wait).
  for (ThreadId t : {0u, 1u, 2u}) {
    rec.end_subcomputation(t, PageSet{}, PageSet{100 + t},
                           {sync::SyncEventKind::kBarrierWait, kB});
    rec.on_release(t, kB);
  }
  for (ThreadId t : {0u, 1u, 2u}) rec.on_acquire(t, kB);
  for (ThreadId t : {0u, 1u, 2u}) {
    rec.end_subcomputation(t, PageSet{100}, PageSet{}, lock_end(kM));
    rec.thread_exiting(t, PageSet{}, PageSet{});
  }
  const Graph g = std::move(rec).finalize();

  // Every pre-barrier node happens-before every post-barrier node.
  for (ThreadId a : {0u, 1u, 2u}) {
    for (ThreadId b : {0u, 1u, 2u}) {
      EXPECT_TRUE(g.happens_before(*g.find(a, 0), *g.find(b, 1)))
          << "pre " << a << " vs post " << b;
    }
  }
  // Cross-thread sync edges exist from each arrival to each departure.
  std::size_t sync_edges = 0;
  for (const auto& e : g.edges()) {
    if (e.kind == EdgeKind::kSync && e.object == kB) ++sync_edges;
  }
  EXPECT_EQ(sync_edges, 6u) << "3 releases x 2 cross-thread acquires";
}

TEST(Recorder, MutexChainTransitivity) {
  // T0 -> T1 -> T2 through the same mutex: T0's work must precede T2's.
  Recorder rec;
  for (ThreadId t : {0u, 1u, 2u}) rec.thread_started(t, t);
  rec.end_subcomputation(0, PageSet{}, PageSet{7}, unlock_end(kM));
  rec.on_release(0, kM);
  rec.on_acquire(1, kM);
  rec.end_subcomputation(1, PageSet{7}, PageSet{8}, unlock_end(kM));
  rec.on_release(1, kM);
  rec.on_acquire(2, kM);
  rec.end_subcomputation(2, PageSet{8}, PageSet{}, lock_end(kM));
  for (ThreadId t : {0u, 1u, 2u}) rec.thread_exiting(t, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();
  EXPECT_TRUE(g.happens_before(*g.find(0, 0), *g.find(2, 0)));
}

TEST(Recorder, ThunksRecordBranchPath) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.on_branch(0, {0x1000, 0x1040, true, false});
  rec.on_branch(0, {0x1050, 0x1060, false, false});
  rec.on_branch(0, {0x1070, 0x2000, true, true});
  rec.end_subcomputation(0, PageSet{}, PageSet{}, lock_end(kM));
  rec.on_branch(0, {0x2000, 0x2040, true, false});
  rec.thread_exiting(0, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();

  const auto& first = g.node(*g.find(0, 0));
  ASSERT_EQ(first.thunks.size(), 3u);
  EXPECT_EQ(first.thunks[0].beta, 0u);
  EXPECT_EQ(first.thunks[1].beta, 1u);
  EXPECT_EQ(first.thunks[2].beta, 2u);
  EXPECT_TRUE(first.thunks[2].branch.indirect);
  const auto& second = g.node(*g.find(0, 1));
  ASSERT_EQ(second.thunks.size(), 1u);
  EXPECT_EQ(second.thunks[0].branch.ip, 0x2000u);
}

TEST(Recorder, ScheduleEventsAreSequenced) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.record_schedule_event(0, kM, sync::SyncEventKind::kMutexLock);
  rec.record_schedule_event(0, kM, sync::SyncEventKind::kMutexUnlock);
  rec.thread_exiting(0, PageSet{}, PageSet{});
  const Graph g = std::move(rec).finalize();
  ASSERT_GE(g.schedule().size(), 3u);  // start + lock + unlock + exit
  for (std::size_t i = 1; i < g.schedule().size(); ++i) {
    EXPECT_LT(g.schedule()[i - 1].seq, g.schedule()[i].seq);
  }
}

TEST(Recorder, FinalizeWithLiveThreadThrows) {
  Recorder rec;
  rec.thread_started(0, 0);
  EXPECT_THROW((void)std::move(rec).finalize(), std::logic_error);
}

TEST(Recorder, DoubleStartThrows) {
  Recorder rec;
  rec.thread_started(0, 0);
  EXPECT_THROW(rec.thread_started(0, 0), std::logic_error);
}

TEST(Recorder, UseBeforeStartThrows) {
  Recorder rec;
  EXPECT_THROW(rec.on_branch(3, {}), std::logic_error);
}

TEST(Recorder, SnapshotPrefixIsCausallyClosedSubgraph) {
  Recorder rec;
  rec.thread_started(0, 0);
  rec.thread_started(1, 0);
  rec.end_subcomputation(0, PageSet{}, PageSet{1}, unlock_end(kM));
  rec.on_release(0, kM);
  const std::uint64_t cut = rec.sequence();
  rec.on_acquire(1, kM);
  rec.end_subcomputation(1, PageSet{1}, PageSet{}, lock_end(kM));

  const Graph snap = rec.snapshot_prefix(cut);
  EXPECT_EQ(snap.nodes().size(), 1u) << "only T0's completed node is in";

  rec.thread_exiting(0, PageSet{}, PageSet{});
  rec.thread_exiting(1, PageSet{}, PageSet{});
  const Graph full = std::move(rec).finalize();
  EXPECT_GT(full.nodes().size(), snap.nodes().size());
  std::string reason;
  EXPECT_TRUE(snap.validate(&reason)) << reason;
}

}  // namespace
