// Inspector-facade and report tests: options plumbing, comparisons,
// snapshots-during-run, PT verification plumbing, table formatting.
#include <gtest/gtest.h>

#include "core/inspector.h"
#include "core/report.h"
#include "snapshot/consistent_cut.h"
#include "workloads/registry.h"

namespace {

using namespace inspector::core;
using inspector::workloads::WorkloadConfig;

WorkloadConfig tiny() {
  WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.2;
  return config;
}

TEST(InspectorFacade, CompareProducesBothRuns) {
  Inspector insp;
  const auto cmp =
      insp.compare(inspector::workloads::make_histogram(tiny()));
  EXPECT_EQ(cmp.native.mode, inspector::runtime::Mode::kNative);
  EXPECT_EQ(cmp.traced.mode, inspector::runtime::Mode::kInspector);
  EXPECT_FALSE(cmp.native.graph.has_value());
  EXPECT_TRUE(cmp.traced.graph.has_value());
  EXPECT_GT(cmp.time_overhead(), 1.0);
  EXPECT_GT(cmp.work_overhead(), 1.0);
}

TEST(InspectorFacade, VerifyPtRejectsNativeRun) {
  Inspector insp;
  const auto native =
      insp.run_native(inspector::workloads::make_histogram(tiny()));
  const auto v = Inspector::verify_pt(native);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.detail.find("no PT data"), std::string::npos);
}

TEST(InspectorFacade, SnapshotRingFillsDuringRun) {
  Options options;
  options.snapshot_every_syncs = 8;
  options.snapshot_ring_slots = 4;
  Inspector insp(options);
  const auto result =
      insp.run(inspector::workloads::make_word_count(tiny()));
  EXPECT_GT(result.stats.snapshots_taken, 0u);
  ASSERT_NE(result.snapshots, nullptr);
  EXPECT_GT(result.snapshots->occupied(), 0u);

  // Every stored snapshot must be a valid, causally-closed CPG prefix.
  auto& ring = *result.snapshots;
  while (auto snap = ring.consume()) {
    std::string reason;
    EXPECT_TRUE(snap->validate(&reason)) << reason;
    EXPECT_TRUE(inspector::snapshot::is_causally_closed(*result.graph, *snap));
    EXPECT_LE(snap->nodes().size(), result.graph->nodes().size());
  }
}

TEST(InspectorFacade, SnapshotAuxModeStillTraces) {
  Options options;
  options.aux_mode = inspector::ptsim::RingMode::kSnapshot;
  options.aux_buffer_bytes = 4096;  // tiny window: old data overwritten
  Inspector insp(options);
  const auto result =
      insp.run(inspector::workloads::make_histogram(tiny()));
  EXPECT_GT(result.stats.pt_bytes, 0u);
  ASSERT_TRUE(result.graph.has_value());
  std::string reason;
  EXPECT_TRUE(result.graph->validate(&reason)) << reason;
}

TEST(InspectorFacade, TinyAuxBufferCausesGapsNotCrashes) {
  Options options;
  options.aux_buffer_bytes = 128;  // full-trace mode, overflows certain
  options.aux_drain_interval_quanta = 1u << 30;  // perf never keeps up
  Inspector insp(options);
  const auto result =
      insp.run(inspector::workloads::make_string_match(tiny()));
  EXPECT_GT(result.stats.pt_overflows, 0u)
      << "perf that cannot keep up produces trace gaps (§V-B)";
  // The CPG is still complete: gaps only affect the PT byte stream.
  std::string reason;
  EXPECT_TRUE(result.graph->validate(&reason)) << reason;
  // The flow decoder reports the gaps instead of failing.
  const auto v = Inspector::verify_pt(result);
  EXPECT_GT(v.gaps, 0u);
}

TEST(InspectorFacade, CostModelIsAdjustable) {
  Options cheap;
  cheap.costs.page_fault_ns = 0;
  cheap.costs.process_create_extra_ns = 0;
  cheap.costs.process_child_startup_ns = 0;
  cheap.costs.pt_branch_ns = 0;
  cheap.costs.pt_byte_ns = 0.0;
  cheap.costs.sync_extra_ns = 0;
  cheap.costs.commit_base_ns = 0;
  cheap.costs.commit_page_ns = 0;
  Inspector cheap_insp(cheap);
  Inspector default_insp;
  auto program = inspector::workloads::make_histogram(tiny());
  const auto cheap_cmp = cheap_insp.compare(program);
  const auto default_cmp = default_insp.compare(program);
  EXPECT_LT(cheap_cmp.time_overhead(), default_cmp.time_overhead());
  EXPECT_NEAR(cheap_cmp.time_overhead(), 1.0, 0.1)
      << "with zero provenance costs INSPECTOR ~= native";
}

// --- report/table formatting ------------------------------------------

TEST(Report, TableAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, TableRejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, Formatters) {
  EXPECT_EQ(format_overhead(2.345), "2.35x");
  EXPECT_EQ(format_sci(1.16e6), "1.16e+06");
  EXPECT_EQ(format_mb(183ull << 20), "183.0 MB");
  EXPECT_EQ(format_fixed(3.14159, 3), "3.142");
}

}  // namespace
