// Determinism of the parallel analysis runtime across worker counts.
//
// The contract of util::TaskPool consumers is bit-identical output at
// every worker count: the shared query index (ranks, topological
// levels, inverted-index buckets), the page-major race scan, taint
// propagation, and incremental invalidation may split work across
// workers but must merge deterministically. These property tests
// rebuild the same randomized recorder histories at 1, 2, and 8
// workers and assert full equality against the single-worker result.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/incremental.h"
#include "analysis/races.h"
#include "analysis/taint.h"
#include "history_fixtures.h"
#include "util/parallel.h"

namespace {

using namespace inspector::cpg;
namespace analysis = inspector::analysis;
namespace sync = inspector::sync;
namespace util = inspector::util;
using inspector::PageSet;
using inspector::fixtures::dense_history;
using inspector::fixtures::random_history;
using inspector::fixtures::ThreadCountGuard;

/// Everything the analysis layer computes, flattened for comparison.
struct AnalysisFingerprint {
  std::vector<std::uint32_t> ranks;
  std::vector<NodeId> topo;
  std::vector<std::vector<NodeId>> levels;
  std::vector<std::uint64_t> pages;
  std::vector<std::vector<NodeId>> writers;
  std::vector<std::vector<NodeId>> readers;
  std::vector<analysis::RaceReport> races;
  std::vector<NodeId> tainted_nodes;
  std::vector<std::uint64_t> tainted_pages;
  std::vector<NodeId> dirty_nodes;
  std::vector<std::uint64_t> dirty_pages;

  bool operator==(const AnalysisFingerprint&) const = default;
};

AnalysisFingerprint fingerprint(const Graph& g) {
  AnalysisFingerprint fp;
  for (const auto& n : g.nodes()) fp.ranks.push_back(g.rank(n.id));
  const auto topo = g.topological_view();
  fp.topo.assign(topo.begin(), topo.end());
  for (std::size_t l = 0; l < g.level_count(); ++l) {
    const auto lvl = g.level_nodes(l);
    fp.levels.emplace_back(lvl.begin(), lvl.end());
  }
  const auto pages = g.pages();
  fp.pages.assign(pages.begin(), pages.end());
  for (std::uint64_t page : pages) {
    fp.writers.push_back(g.writers_of_page(page));
    fp.readers.push_back(g.readers_of_page(page));
  }
  fp.races = analysis::find_races(g);

  const PageSet seeds = {0, 3, 7};
  const auto taint = analysis::propagate_taint(g, seeds);
  fp.tainted_nodes = taint.tainted_nodes;
  fp.tainted_pages = taint.tainted_pages;  // PageSet: already sorted

  const auto inv = analysis::invalidate(g, seeds);
  fp.dirty_nodes = inv.dirty;
  fp.dirty_pages = inv.dirty_pages;
  return fp;
}

class ParallelDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelDeterminism, IdenticalAcrossWorkerCounts) {
  ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const AnalysisFingerprint reference = fingerprint(random_history(GetParam()));
  EXPECT_FALSE(reference.topo.empty());
  for (unsigned workers : {2u, 8u}) {
    util::set_analysis_threads(workers);
    const AnalysisFingerprint fp = fingerprint(random_history(GetParam()));
    EXPECT_EQ(fp.ranks, reference.ranks) << workers << " workers";
    EXPECT_EQ(fp.topo, reference.topo) << workers << " workers";
    EXPECT_EQ(fp.levels, reference.levels) << workers << " workers";
    EXPECT_EQ(fp.pages, reference.pages) << workers << " workers";
    EXPECT_EQ(fp.writers, reference.writers) << workers << " workers";
    EXPECT_EQ(fp.readers, reference.readers) << workers << " workers";
    EXPECT_EQ(fp.races, reference.races) << workers << " workers";
    EXPECT_EQ(fp.tainted_nodes, reference.tainted_nodes)
        << workers << " workers";
    EXPECT_EQ(fp.tainted_pages, reference.tainted_pages)
        << workers << " workers";
    EXPECT_EQ(fp.dirty_nodes, reference.dirty_nodes) << workers << " workers";
    EXPECT_EQ(fp.dirty_pages, reference.dirty_pages) << workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, ParallelDeterminism,
                         ::testing::Range<std::uint64_t>(0, 16));

// The same comparison on histories big enough that the parallel sorts,
// scatter fills, and multi-chunk scans actually engage (the small
// histories above stay under the serial cutoffs).
TEST(ParallelDeterminismDense, IdenticalAcrossWorkerCounts) {
  ThreadCountGuard guard;
  for (const std::uint64_t seed : {1ULL, 5ULL}) {
    util::set_analysis_threads(1);
    const AnalysisFingerprint reference = fingerprint(dense_history(seed));
    EXPECT_GT(reference.topo.size(), 500u)
        << "dense history must be big enough to exercise parallel paths";
    for (unsigned workers : {2u, 8u}) {
      util::set_analysis_threads(workers);
      EXPECT_TRUE(fingerprint(dense_history(seed)) == reference)
          << "analysis outputs diverged at " << workers
          << " workers on dense seed " << seed;
    }
  }
}

// Racy flows are schedule-dependent, so propagation must treat them
// conservatively: a node that reads a page a *concurrent* (same-level)
// node wrote from tainted data is tainted too, at every worker count.
TEST(PropagationRacyFlow, ConcurrentWriterReaderIsCovered) {
  ThreadCountGuard guard;
  for (unsigned workers : {1u, 2u, 8u}) {
    util::set_analysis_threads(workers);
    Recorder rec;
    rec.thread_started(0, 0);
    rec.thread_started(1, 1);
    // T0 reads the seed page and publishes to page 200; T1 reads page
    // 200 with no synchronization -- a racy, same-level pair.
    rec.end_subcomputation(0, {100}, {200},
                           {sync::SyncEventKind::kMutexLock, 1});
    rec.end_subcomputation(1, {200}, {300},
                           {sync::SyncEventKind::kMutexLock, 1});
    rec.thread_exiting(0, {}, {});
    rec.thread_exiting(1, {}, {});
    const Graph g = std::move(rec).finalize();
    ASSERT_TRUE(g.concurrent(0, 1)) << "history must actually race";

    const auto taint = analysis::propagate_taint(g, PageSet{100});
    EXPECT_TRUE(taint.node_tainted(0)) << workers << " workers";
    EXPECT_TRUE(taint.node_tainted(1))
        << "concurrent reader of a racy write must stay tainted at "
        << workers << " workers";
    EXPECT_TRUE(inspector::page_set_contains(taint.tainted_pages, 200));
    EXPECT_TRUE(inspector::page_set_contains(taint.tainted_pages, 300))
        << "the racy flow's downstream write must be tainted";
  }
}

// The level decomposition itself must be sound: levels partition the
// node set, every recorded edge goes to a strictly higher level, and
// concatenating levels reproduces the cached topological order.
TEST(TopologicalLevels, PartitionAndRespectEdges) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = random_history(seed);
    std::vector<std::size_t> level_of(g.nodes().size(), ~std::size_t{0});
    std::size_t total = 0;
    std::vector<NodeId> concatenated;
    for (std::size_t l = 0; l < g.level_count(); ++l) {
      const auto lvl = g.level_nodes(l);
      EXPECT_FALSE(lvl.empty()) << "empty level " << l;
      EXPECT_TRUE(std::is_sorted(lvl.begin(), lvl.end()));
      for (NodeId id : lvl) {
        EXPECT_EQ(level_of[id], ~std::size_t{0}) << "node in two levels";
        level_of[id] = l;
      }
      total += lvl.size();
      concatenated.insert(concatenated.end(), lvl.begin(), lvl.end());
    }
    EXPECT_EQ(total, g.nodes().size());
    const auto topo = g.topological_view();
    EXPECT_EQ(concatenated, std::vector<NodeId>(topo.begin(), topo.end()));
    for (const auto& e : g.edges()) {
      EXPECT_LT(level_of[e.from], level_of[e.to]) << e;
    }
    // Same-thread nodes never share a level (their control chain
    // orders them), which is what makes thread-carryover propagation
    // safe to evaluate level-parallel.
    for (std::size_t t = 0; t < g.thread_count(); ++t) {
      const auto nodes = g.thread_nodes(static_cast<ThreadId>(t));
      for (std::size_t i = 1; i < nodes.size(); ++i) {
        EXPECT_LT(level_of[nodes[i - 1]], level_of[nodes[i]]);
      }
    }
  }
}

}  // namespace
