// LZ block-codec tests: round trips on adversarial and realistic
// inputs, malformed-input handling through the typed
// decompress_checked() path (truncations, out-of-window offsets,
// trailing garbage, a full bit-flip sweep), plus the fig-9 claim that
// PT logs compress very well.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ptsim/encoder.h"
#include "ptsim/sink.h"
#include "snapshot/compress.h"

namespace {

using inspector::StatusCode;
using inspector::snapshot::compress;
using inspector::snapshot::compression_ratio;
using inspector::snapshot::decompress;
using inspector::snapshot::decompress_checked;
using inspector::snapshot::kBlockHeaderBytes;

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& in) {
  return decompress(compress(in));
}

TEST(Compress, EmptyInput) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(roundtrip(empty), empty);
}

TEST(Compress, SingleByte) {
  const std::vector<std::uint8_t> one = {0x42};
  EXPECT_EQ(roundtrip(one), one);
}

TEST(Compress, AllZeros) {
  const std::vector<std::uint8_t> zeros(100000, 0);
  const auto packed = compress(zeros);
  EXPECT_EQ(decompress(packed), zeros);
  EXPECT_GT(compression_ratio(zeros.size(), packed.size()), 50.0)
      << "RLE-like input must compress massively";
}

TEST(Compress, RepeatingPattern) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<std::uint8_t>(i % 7));
  }
  const auto packed = compress(input);
  EXPECT_EQ(decompress(packed), input);
  EXPECT_GT(compression_ratio(input.size(), packed.size()), 10.0);
}

TEST(Compress, IncompressibleRandomSurvives) {
  std::mt19937_64 rng(99);
  std::vector<std::uint8_t> input(65536);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  const auto packed = compress(input);
  EXPECT_EQ(decompress(packed), input);
  // Random data cannot compress; expansion must stay modest.
  EXPECT_LT(packed.size(), input.size() + input.size() / 8 + 64);
}

TEST(Compress, OverlappingMatchRle) {
  // "abcabcabc...": matches overlap their own output.
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 3000; ++i) input.push_back("abc"[i % 3]);
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Compress, LongLiteralRuns) {
  // > 255 literals forces extended length bytes.
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> input(1000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Compress, LongMatchRuns) {
  // > 255-byte match forces extended match-length bytes.
  std::vector<std::uint8_t> input(1, 0xAA);
  input.insert(input.end(), 2000, 0xAA);
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Compress, TruncatedBlockIsTypedError) {
  const std::vector<std::uint8_t> input(500, 0x11);
  auto packed = compress(input);
  packed.resize(packed.size() / 2);
  const auto result = decompress_checked(packed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The throwing wrapper (the snapshot ring's path) carries the same
  // message.
  EXPECT_THROW((void)decompress(packed), std::runtime_error);
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_FALSE(decompress_checked(tiny).ok());
}

/// A hand-crafted header: decoded size + arbitrary checksum (the
/// crafted bodies below die structurally before the checksum runs).
std::vector<std::uint8_t> header_for(std::uint64_t decoded_size) {
  std::vector<std::uint8_t> block(kBlockHeaderBytes, 0);
  for (int i = 0; i < 8; ++i) {
    block[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(decoded_size >> (8 * i));
  }
  return block;
}

TEST(Compress, OffsetBeforeWindowStartIsTypedError) {
  // A match offset reaching before the start of the decoded window.
  auto block = header_for(16);
  block.push_back(0x10);  // 1 literal, match len 4
  block.push_back(0xAB);  // the literal
  block.push_back(0x50);  // offset 80 > output size 1
  block.push_back(0x00);
  const auto result = decompress_checked(block);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("window start"),
            std::string::npos)
      << result.status().message();
  EXPECT_THROW((void)decompress(block), std::runtime_error);
}

TEST(Compress, ZeroOffsetIsTypedError) {
  auto block = header_for(16);
  block.push_back(0x10);
  block.push_back(0xAB);
  block.push_back(0x00);  // offset 0: always invalid
  block.push_back(0x00);
  EXPECT_FALSE(decompress_checked(block).ok());
}

TEST(Compress, TruncatedLengthExtensionIsTypedError) {
  // Literal nibble 15 announces extension bytes that never arrive.
  auto block = header_for(64);
  block.push_back(0xF0);
  const auto ended = decompress_checked(block);
  ASSERT_FALSE(ended.ok());
  EXPECT_EQ(ended.status().code(), StatusCode::kInvalidArgument);

  // A run of 255-extensions cut mid-stream.
  auto run = header_for(2000);
  run.push_back(0xF0);
  run.push_back(255);
  run.push_back(255);
  const auto cut = decompress_checked(run);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kInvalidArgument);
}

TEST(Compress, TrailingGarbageIsTypedError) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 600; ++i) input.push_back("provenance"[i % 10]);
  auto packed = compress(input);
  ASSERT_EQ(decompress_checked(packed).value(), input);
  packed.push_back(0x00);
  const auto one = decompress_checked(packed);
  ASSERT_FALSE(one.ok());
  EXPECT_NE(one.status().message().find("trailing garbage"),
            std::string::npos)
      << one.status().message();
  packed.push_back(0xAB);
  packed.push_back(0xCD);
  EXPECT_FALSE(decompress_checked(packed).ok());
}

TEST(Compress, ImplausibleDecodedSizeIsRejectedBeforeAllocating) {
  // A corrupt header declaring an absurd decoded size must fail fast,
  // not reserve gigabytes.
  auto block = header_for(~std::uint64_t{0} / 2);
  block.push_back(0x10);
  block.push_back(0xAB);
  const auto result = decompress_checked(block);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("implausible"),
            std::string::npos)
      << result.status().message();
}

TEST(Compress, BitFlipSweepYieldsTypedErrors) {
  // Flip every bit of a valid block: each flip must surface as a
  // typed error -- structurally (bad token, offset, size) or through
  // the decoded-bytes checksum (a flipped literal decodes cleanly to
  // the wrong output, which only the checksum can catch). Random
  // input keeps the body literal-dominated, so no flip can alias to a
  // second valid encoding of the same bytes.
  std::mt19937_64 rng(1234);
  std::vector<std::uint8_t> input(2048);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  const auto packed = compress(input);
  ASSERT_EQ(decompress_checked(packed).value(), input);
  for (std::size_t bit = 0; bit < packed.size() * 8; ++bit) {
    auto corrupt = packed;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto result = decompress_checked(corrupt);
    ASSERT_FALSE(result.ok()) << "bit " << bit << " flipped silently";
    // Structural damage is kInvalidArgument; a flip the structure
    // survives decodes to wrong bytes and fails the checksum as
    // kDataLoss. Nothing else is acceptable.
    EXPECT_TRUE(result.status().code() == StatusCode::kInvalidArgument ||
                result.status().code() == StatusCode::kDataLoss)
        << "bit " << bit << ": " << to_string(result.status().code());
  }
}

TEST(Compress, ContentCorruptionFailsTheChecksum) {
  // A patterned input compresses into matches; flipping one literal
  // byte leaves the block structurally valid, so only the checksum
  // reports it.
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(static_cast<std::uint8_t>(i % 13));
  }
  auto packed = compress(input);
  packed[kBlockHeaderBytes + 1] ^= 0x01;  // first literal byte
  const auto result = decompress_checked(packed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
      << result.status().message();
}

TEST(Compress, RatioZeroDenominatorIsExplicit) {
  // 0-byte "compressed" output must never read as the *worst* ratio.
  EXPECT_EQ(compression_ratio(0, 0), 1.0);
  EXPECT_TRUE(std::isinf(compression_ratio(1000, 0)));
  EXPECT_GT(compression_ratio(1000, 0), 0.0);
  // The plain cases are untouched.
  EXPECT_DOUBLE_EQ(compression_ratio(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(compression_ratio(0, 16), 0.0);
}

// The fig-9 behaviour: a loop-heavy PT stream (uniform TNT) compresses
// far better than a data-dependent one (random TNT), bracketing the
// paper's 6x..37x range from both sides.
TEST(Compress, PtStreamsCompressByEntropy) {
  using namespace inspector::ptsim;
  std::mt19937_64 rng(5);

  VectorSink loops;
  PacketEncoder loop_enc(loops);
  loop_enc.on_enable(0x1000);
  for (int i = 0; i < 60000; ++i) loop_enc.on_conditional(i % 16 != 15);
  loop_enc.flush();

  VectorSink data;
  PacketEncoder data_enc(data);
  data_enc.on_enable(0x1000);
  for (int i = 0; i < 60000; ++i) data_enc.on_conditional((rng() & 1) != 0);
  data_enc.flush();

  const auto packed_loops = compress(loops.data());
  const auto packed_data = compress(data.data());
  EXPECT_EQ(decompress(packed_loops), loops.data());
  EXPECT_EQ(decompress(packed_data), data.data());

  const double loop_ratio =
      compression_ratio(loops.data().size(), packed_loops.size());
  const double data_ratio =
      compression_ratio(data.data().size(), packed_data.size());
  EXPECT_GT(loop_ratio, 3.0 * data_ratio)
      << "loop back-edge streams (histogram, 34x) must compress far "
         "better than data-dependent streams (string_match, 6x)";
  EXPECT_GT(data_ratio, 1.0);
}

class CompressFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressFuzzTest, MixedContentRoundTrips) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::uint8_t> input;
  // Alternating compressible and random segments of random sizes.
  for (int seg = 0; seg < 20; ++seg) {
    const std::size_t len = 1 + rng() % 3000;
    if (seg % 2 == 0) {
      const auto fill = static_cast<std::uint8_t>(rng());
      input.insert(input.end(), len, fill);
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        input.push_back(static_cast<std::uint8_t>(rng()));
      }
    }
  }
  EXPECT_EQ(roundtrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
