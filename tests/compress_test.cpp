// LZ block-codec tests: round trips on adversarial and realistic
// inputs, plus the fig-9 claim that PT logs compress very well.
#include <gtest/gtest.h>

#include <random>

#include "ptsim/encoder.h"
#include "ptsim/sink.h"
#include "snapshot/compress.h"

namespace {

using inspector::snapshot::compress;
using inspector::snapshot::compression_ratio;
using inspector::snapshot::decompress;

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& in) {
  return decompress(compress(in));
}

TEST(Compress, EmptyInput) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(roundtrip(empty), empty);
}

TEST(Compress, SingleByte) {
  const std::vector<std::uint8_t> one = {0x42};
  EXPECT_EQ(roundtrip(one), one);
}

TEST(Compress, AllZeros) {
  const std::vector<std::uint8_t> zeros(100000, 0);
  const auto packed = compress(zeros);
  EXPECT_EQ(decompress(packed), zeros);
  EXPECT_GT(compression_ratio(zeros.size(), packed.size()), 50.0)
      << "RLE-like input must compress massively";
}

TEST(Compress, RepeatingPattern) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<std::uint8_t>(i % 7));
  }
  const auto packed = compress(input);
  EXPECT_EQ(decompress(packed), input);
  EXPECT_GT(compression_ratio(input.size(), packed.size()), 10.0);
}

TEST(Compress, IncompressibleRandomSurvives) {
  std::mt19937_64 rng(99);
  std::vector<std::uint8_t> input(65536);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  const auto packed = compress(input);
  EXPECT_EQ(decompress(packed), input);
  // Random data cannot compress; expansion must stay modest.
  EXPECT_LT(packed.size(), input.size() + input.size() / 8 + 64);
}

TEST(Compress, OverlappingMatchRle) {
  // "abcabcabc...": matches overlap their own output.
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 3000; ++i) input.push_back("abc"[i % 3]);
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Compress, LongLiteralRuns) {
  // > 255 literals forces extended length bytes.
  std::mt19937_64 rng(7);
  std::vector<std::uint8_t> input(1000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Compress, LongMatchRuns) {
  // > 255-byte match forces extended match-length bytes.
  std::vector<std::uint8_t> input(1, 0xAA);
  input.insert(input.end(), 2000, 0xAA);
  EXPECT_EQ(roundtrip(input), input);
}

TEST(Compress, TruncatedBlockThrows) {
  const std::vector<std::uint8_t> input(500, 0x11);
  auto packed = compress(input);
  packed.resize(packed.size() / 2);
  EXPECT_THROW((void)decompress(packed), std::runtime_error);
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_THROW((void)decompress(tiny), std::runtime_error);
}

TEST(Compress, CorruptOffsetThrows) {
  // Hand-craft a block whose match offset points before the output.
  std::vector<std::uint8_t> block;
  for (int i = 0; i < 8; ++i) block.push_back(i == 0 ? 16 : 0);  // size 16
  block.push_back(0x10);  // 1 literal, match len 4
  block.push_back(0xAB);  // the literal
  block.push_back(0x50);  // offset 80 > output size 1
  block.push_back(0x00);
  EXPECT_THROW((void)decompress(block), std::runtime_error);
}

// The fig-9 behaviour: a loop-heavy PT stream (uniform TNT) compresses
// far better than a data-dependent one (random TNT), bracketing the
// paper's 6x..37x range from both sides.
TEST(Compress, PtStreamsCompressByEntropy) {
  using namespace inspector::ptsim;
  std::mt19937_64 rng(5);

  VectorSink loops;
  PacketEncoder loop_enc(loops);
  loop_enc.on_enable(0x1000);
  for (int i = 0; i < 60000; ++i) loop_enc.on_conditional(i % 16 != 15);
  loop_enc.flush();

  VectorSink data;
  PacketEncoder data_enc(data);
  data_enc.on_enable(0x1000);
  for (int i = 0; i < 60000; ++i) data_enc.on_conditional((rng() & 1) != 0);
  data_enc.flush();

  const auto packed_loops = compress(loops.data());
  const auto packed_data = compress(data.data());
  EXPECT_EQ(decompress(packed_loops), loops.data());
  EXPECT_EQ(decompress(packed_data), data.data());

  const double loop_ratio =
      compression_ratio(loops.data().size(), packed_loops.size());
  const double data_ratio =
      compression_ratio(data.data().size(), packed_data.size());
  EXPECT_GT(loop_ratio, 3.0 * data_ratio)
      << "loop back-edge streams (histogram, 34x) must compress far "
         "better than data-dependent streams (string_match, 6x)";
  EXPECT_GT(data_ratio, 1.0);
}

class CompressFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressFuzzTest, MixedContentRoundTrips) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::uint8_t> input;
  // Alternating compressible and random segments of random sizes.
  for (int seg = 0; seg < 20; ++seg) {
    const std::size_t len = 1 + rng() % 3000;
    if (seg % 2 == 0) {
      const auto fill = static_cast<std::uint8_t>(rng());
      input.insert(input.end(), len, fill);
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        input.push_back(static_cast<std::uint8_t>(rng()));
      }
    }
  }
  EXPECT_EQ(roundtrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
