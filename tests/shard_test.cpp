// Unit tests for the sharded store: format round-trips, versioned
// header errors, planner invariants, and the store's LRU budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "cpg/serialize.h"
#include "history_fixtures.h"
#include "shard/engine.h"
#include "shard/format.h"
#include "shard/planner.h"
#include "shard/store.h"

namespace {

using namespace inspector;
namespace fixtures = inspector::fixtures;

std::string temp_store(const std::string& name) {
  return ::testing::TempDir() + "shard_unit_" + name;
}

TEST(ShardPlanner, RejectsBadShardCounts) {
  const cpg::Graph graph = fixtures::random_history(1);
  for (const std::uint32_t k : {0u, 256u, 1000u}) {
    shard::ShardPlanner planner(shard::PlanOptions{k});
    const auto plan = planner.plan(graph);
    ASSERT_FALSE(plan.ok()) << k;
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardPlanner, RankFencesPartitionEveryNode) {
  const cpg::Graph graph = fixtures::random_history(2);
  shard::ShardPlanner planner(shard::PlanOptions{5});
  const auto plan = planner.plan(graph);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  std::size_t assigned = 0;
  for (std::uint32_t s = 0; s < plan->shard_count; ++s) {
    for (const cpg::NodeId id : plan->shard_nodes[s]) {
      EXPECT_EQ(plan->node_shard[id], s);
      EXPECT_GE(graph.rank(id), plan->rank_fences[s]);
      EXPECT_LT(graph.rank(id), plan->rank_fences[s + 1]);
      ++assigned;
    }
    // Within a shard, local order is ascending global id.
    EXPECT_TRUE(std::is_sorted(plan->shard_nodes[s].begin(),
                               plan->shard_nodes[s].end()));
  }
  EXPECT_EQ(assigned, graph.nodes().size());
}

TEST(ShardFormat, ManifestRoundTrips) {
  const cpg::Graph graph = fixtures::random_history(3);
  const std::string dir = temp_store("manifest_roundtrip");
  const auto written = shard::write_store(graph, dir, shard::PlanOptions{3});
  ASSERT_TRUE(written.ok()) << written.status().message();
  const auto read = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(*read, *written);
  EXPECT_EQ(read->stats, graph.stats());
  const auto universe = graph.pages();
  EXPECT_TRUE(std::equal(read->pages.begin(), read->pages.end(),
                         universe.begin(), universe.end()));
}

TEST(ShardFormat, ShardFilesRoundTripAndCoverTheGraph) {
  const cpg::Graph graph = fixtures::random_history(4);
  const std::string dir = temp_store("shard_roundtrip");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{4});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::size_t nodes_seen = 0;
  std::size_t intra_edges = 0;
  std::size_t frontier_in = 0;
  std::size_t frontier_out = 0;
  for (const auto& info : manifest->shards) {
    const auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok()) << data.status().message();
    nodes_seen += data->global_ids.size();
    intra_edges += data->edge_globals.size();
    frontier_in += data->frontier_in.size();
    frontier_out += data->frontier_out.size();
    for (std::size_t local = 0; local < data->global_ids.size(); ++local) {
      const cpg::NodeId gid = data->global_ids[local];
      EXPECT_EQ(data->global_ranks[local], graph.rank(gid));
      // The shard keeps the node payload verbatim (modulo local id).
      EXPECT_EQ(data->graph.nodes()[local].clock, graph.node(gid).clock);
      EXPECT_EQ(data->graph.nodes()[local].read_set, graph.node(gid).read_set);
    }
  }
  // Every node once; every edge exactly once as intra or frontier
  // (each frontier edge is stored in both endpoint shards).
  EXPECT_EQ(nodes_seen, graph.nodes().size());
  EXPECT_EQ(frontier_in, frontier_out);
  EXPECT_EQ(intra_edges + frontier_in, graph.edges().size());
}

TEST(ShardFormat, WrongVersionAndMagicAreTypedErrors) {
  const cpg::Graph graph = fixtures::random_history(5);
  const std::string dir = temp_store("version_check");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{2});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();

  auto bytes = shard::read_file_bytes(dir + "/" + shard::kManifestFileName);
  ASSERT_TRUE(bytes.ok());
  // Corrupt the version field (bytes 4..7).
  auto wrong_version = bytes.value();
  wrong_version[4] = 0x77;
  const auto version_error = shard::deserialize_manifest(wrong_version);
  ASSERT_FALSE(version_error.ok());
  EXPECT_EQ(version_error.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(version_error.status().message().find("format version"),
            std::string::npos)
      << version_error.status().message();
  // Corrupt the magic.
  auto wrong_magic = bytes.value();
  wrong_magic[0] ^= 0xFF;
  const auto magic_error = shard::deserialize_manifest(wrong_magic);
  ASSERT_FALSE(magic_error.ok());
  EXPECT_NE(magic_error.status().message().find("bad magic"),
            std::string::npos)
      << magic_error.status().message();

  // Same discipline for a shard file.
  auto shard_bytes =
      shard::read_file_bytes(dir + "/" + manifest->shards[0].file);
  ASSERT_TRUE(shard_bytes.ok());
  auto stale = shard_bytes.value();
  stale[4] = 0x63;
  const auto stale_error = shard::deserialize_shard(stale);
  ASSERT_FALSE(stale_error.ok());
  EXPECT_EQ(stale_error.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale_error.status().message().find("format version"),
            std::string::npos);
}

TEST(ShardFormat, CorruptFrontierEndpointsAreTypedErrors) {
  // A shard whose frontier edges reference nodes the shard does not
  // own (bit flip, or files mixed from two stores) must fail decoding
  // with a typed error -- the lookup builders dereference endpoint
  // ids without rechecking.
  const cpg::Graph graph = fixtures::random_history(8);
  const std::string dir = temp_store("corrupt_frontier");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{3});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  // Find a shard with at least one frontier edge and swap its in/out
  // lists' roles by rewriting one endpoint to a foreign node id.
  for (const auto& info : manifest->shards) {
    if (info.frontier_count == 0) continue;
    auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok());
    if (data->frontier_in.empty()) continue;
    auto corrupt = std::move(data).value();
    // Point the local endpoint at a node this shard cannot own.
    corrupt.frontier_in[0].to = corrupt.frontier_in[0].from;
    const auto reparsed =
        shard::deserialize_shard(shard::serialize_shard(corrupt));
    ASSERT_FALSE(reparsed.ok());
    EXPECT_EQ(reparsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(reparsed.status().message().find("endpoints"),
              std::string::npos)
        << reparsed.status().message();
    return;
  }
  GTEST_SKIP() << "history produced no cross-shard edges";
}

TEST(ShardStore, MixedStoreFilesAreRejectedAtLoad) {
  // Two stores sharing file names: swapping a shard file between them
  // must be caught by the manifest cross-check at load, not served.
  const std::string dir_a = temp_store("mixed_a");
  const std::string dir_b = temp_store("mixed_b");
  ASSERT_TRUE(shard::write_store(fixtures::random_history(9), dir_a,
                                 shard::PlanOptions{2})
                  .ok());
  ASSERT_TRUE(shard::write_store(fixtures::dense_history(4), dir_b,
                                 shard::PlanOptions{2})
                  .ok());
  const auto stolen = shard::read_file_bytes(dir_b + "/shard-001.bin");
  ASSERT_TRUE(stolen.ok());
  ASSERT_TRUE(
      shard::write_file_bytes(dir_a + "/shard-001.bin", stolen.value()).ok());
  auto store = shard::ShardStore::open(dir_a);
  ASSERT_TRUE(store.ok());
  const auto loaded = store.value()->load(1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("does not match the manifest"),
            std::string::npos)
      << loaded.status().message();
}

TEST(ShardStore, OpenFailsCleanlyOnMissingDirectory) {
  const auto store = shard::ShardStore::open(temp_store("does_not_exist"));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
}

TEST(ShardStore, BudgetEvictsLeastRecentlyUsed) {
  const cpg::Graph graph = fixtures::dense_history(2);
  const std::string dir = temp_store("lru");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{4});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::uint64_t max_shard = 0;
  for (const auto& info : manifest->shards) {
    max_shard = std::max(max_shard, info.byte_size);
  }
  shard::StoreOptions options;
  options.memory_budget_bytes = max_shard;  // room for ~one shard
  auto opened = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto store = opened.value();

  ASSERT_TRUE(store->load(0).ok());
  ASSERT_TRUE(store->load(1).ok());  // evicts shard 0
  auto stats = store->stats();
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, options.memory_budget_bytes);

  ASSERT_TRUE(store->load(1).ok());  // hit
  EXPECT_EQ(store->stats().hits, 1u);
  ASSERT_TRUE(store->load(0).ok());  // miss again: it was evicted
  EXPECT_EQ(store->stats().loads, 3u);
  EXPECT_LE(store->stats().peak_resident_bytes,
            std::max(options.memory_budget_bytes, max_shard));

  // A pinned shard survives its own eviction.
  const auto pinned = store->load(2);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(store->load(3).ok());
  EXPECT_FALSE(pinned.value()->data.global_ids.empty());
}

TEST(ShardStore, UnlimitedBudgetNeverEvicts) {
  const cpg::Graph graph = fixtures::random_history(6);
  const std::string dir = temp_store("unlimited");
  ASSERT_TRUE(shard::write_store(graph, dir, shard::PlanOptions{3}).ok());
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok());
  for (std::uint32_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(store.value()->load(s).ok());
  }
  const auto stats = store.value()->stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_bytes, stats.total_bytes);
  EXPECT_EQ(stats.peak_resident_bytes, stats.total_bytes);
}

TEST(ShardedEngine, GraphAccessorThrowsAndStoreAccessorWorks) {
  const cpg::Graph graph = fixtures::random_history(7);
  const std::string dir = temp_store("accessors");
  ASSERT_TRUE(shard::write_store(graph, dir, shard::PlanOptions{2}).ok());
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok());
  shard::ShardedQueryEngine engine(store.value());
  EXPECT_EQ(engine.store().manifest().total_nodes, graph.nodes().size());
  EXPECT_THROW((void)engine.graph(), std::logic_error);
  // And the engine still answers queries (smoke).
  const auto reply = engine.run(query::StatsQuery{});
  ASSERT_TRUE(reply.ok()) << reply.status().message();
}

}  // namespace
