// Unit tests for the sharded store: format round-trips (raw and
// LZ-compressed payloads), versioned header errors, corrupt-payload
// typed statuses, planner invariants, incremental append, and the
// store's decoded-byte LRU budget with honest pinned accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "cpg/serialize.h"
#include "history_fixtures.h"
#include "shard/engine.h"
#include "shard/format.h"
#include "shard/planner.h"
#include "shard/store.h"
#include "snapshot/compress.h"

namespace {

using namespace inspector;
namespace fixtures = inspector::fixtures;

std::string temp_store(const std::string& name) {
  // Fresh every run: TempDir persists across test invocations, and a
  // leftover committed store changes write_store's behavior (it
  // adopts the next generation rather than truncating live files).
  const std::string dir = ::testing::TempDir() + "shard_unit_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ShardPlanner, RejectsBadShardCounts) {
  const cpg::Graph graph = fixtures::random_history(1);
  for (const std::uint32_t k : {0u, 256u, 1000u}) {
    shard::ShardPlanner planner(shard::PlanOptions{k});
    const auto plan = planner.plan(graph);
    ASSERT_FALSE(plan.ok()) << k;
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardPlanner, RankFencesPartitionEveryNode) {
  const cpg::Graph graph = fixtures::random_history(2);
  shard::ShardPlanner planner(shard::PlanOptions{5});
  const auto plan = planner.plan(graph);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  std::size_t assigned = 0;
  for (std::uint32_t s = 0; s < plan->shard_count; ++s) {
    for (const cpg::NodeId id : plan->shard_nodes[s]) {
      EXPECT_EQ(plan->node_shard[id], s);
      EXPECT_GE(graph.rank(id), plan->rank_fences[s]);
      EXPECT_LT(graph.rank(id), plan->rank_fences[s + 1]);
      ++assigned;
    }
    // Within a shard, local order is ascending global id.
    EXPECT_TRUE(std::is_sorted(plan->shard_nodes[s].begin(),
                               plan->shard_nodes[s].end()));
  }
  EXPECT_EQ(assigned, graph.nodes().size());
}

TEST(ShardFormat, ManifestRoundTrips) {
  const cpg::Graph graph = fixtures::random_history(3);
  const std::string dir = temp_store("manifest_roundtrip");
  const auto written = shard::write_store(graph, dir, shard::PlanOptions{3});
  ASSERT_TRUE(written.ok()) << written.status().message();
  const auto read = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(*read, *written);
  EXPECT_EQ(read->stats, graph.stats());
  const auto universe = graph.pages();
  EXPECT_TRUE(std::equal(read->pages.begin(), read->pages.end(),
                         universe.begin(), universe.end()));
}

TEST(ShardFormat, ShardFilesRoundTripAndCoverTheGraph) {
  const cpg::Graph graph = fixtures::random_history(4);
  const std::string dir = temp_store("shard_roundtrip");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{4});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::size_t nodes_seen = 0;
  std::size_t intra_edges = 0;
  std::size_t frontier_in = 0;
  std::size_t frontier_out = 0;
  for (const auto& info : manifest->shards) {
    const auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok()) << data.status().message();
    nodes_seen += data->global_ids.size();
    intra_edges += data->edge_globals.size();
    frontier_in += data->frontier_in.size();
    frontier_out += data->frontier_out.size();
    for (std::size_t local = 0; local < data->global_ids.size(); ++local) {
      const cpg::NodeId gid = data->global_ids[local];
      EXPECT_EQ(data->global_ranks[local], graph.rank(gid));
      // The shard keeps the node payload verbatim (modulo local id).
      EXPECT_EQ(data->graph.nodes()[local].clock, graph.node(gid).clock);
      EXPECT_EQ(data->graph.nodes()[local].read_set, graph.node(gid).read_set);
    }
  }
  // Every node once; every edge exactly once as intra or frontier
  // (each frontier edge is stored in both endpoint shards).
  EXPECT_EQ(nodes_seen, graph.nodes().size());
  EXPECT_EQ(frontier_in, frontier_out);
  EXPECT_EQ(intra_edges + frontier_in, graph.edges().size());
}

TEST(ShardFormat, WrongVersionAndMagicAreTypedErrors) {
  const cpg::Graph graph = fixtures::random_history(5);
  const std::string dir = temp_store("version_check");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{2});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();

  auto bytes = shard::read_file_bytes(dir + "/" + shard::kManifestFileName);
  ASSERT_TRUE(bytes.ok());
  // Corrupt the version field (bytes 4..7).
  auto wrong_version = bytes.value();
  wrong_version[4] = 0x77;
  const auto version_error = shard::deserialize_manifest(wrong_version);
  ASSERT_FALSE(version_error.ok());
  EXPECT_EQ(version_error.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(version_error.status().message().find("format version"),
            std::string::npos)
      << version_error.status().message();
  // Corrupt the magic.
  auto wrong_magic = bytes.value();
  wrong_magic[0] ^= 0xFF;
  const auto magic_error = shard::deserialize_manifest(wrong_magic);
  ASSERT_FALSE(magic_error.ok());
  EXPECT_NE(magic_error.status().message().find("bad magic"),
            std::string::npos)
      << magic_error.status().message();

  // Same discipline for a shard file.
  auto shard_bytes =
      shard::read_file_bytes(dir + "/" + manifest->shards[0].file);
  ASSERT_TRUE(shard_bytes.ok());
  auto stale = shard_bytes.value();
  stale[4] = 0x63;
  const auto stale_error = shard::deserialize_shard(stale);
  ASSERT_FALSE(stale_error.ok());
  EXPECT_EQ(stale_error.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale_error.status().message().find("format version"),
            std::string::npos);
}

TEST(ShardFormat, CorruptFrontierEndpointsAreTypedErrors) {
  // A shard whose frontier edges reference nodes the shard does not
  // own (bit flip, or files mixed from two stores) must fail decoding
  // with a typed error -- the lookup builders dereference endpoint
  // ids without rechecking.
  const cpg::Graph graph = fixtures::random_history(8);
  const std::string dir = temp_store("corrupt_frontier");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{3});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  // Find a shard with at least one frontier edge and swap its in/out
  // lists' roles by rewriting one endpoint to a foreign node id.
  for (const auto& info : manifest->shards) {
    if (info.frontier_count == 0) continue;
    auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok());
    if (data->frontier_in.empty()) continue;
    auto corrupt = std::move(data).value();
    // Point the local endpoint at a node this shard cannot own.
    corrupt.frontier_in[0].to = corrupt.frontier_in[0].from;
    const auto reparsed =
        shard::deserialize_shard(shard::serialize_shard(corrupt));
    ASSERT_FALSE(reparsed.ok());
    EXPECT_EQ(reparsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(reparsed.status().message().find("endpoints"),
              std::string::npos)
        << reparsed.status().message();
    return;
  }
  GTEST_SKIP() << "history produced no cross-shard edges";
}

TEST(ShardStore, MixedStoreFilesAreRejectedAtLoad) {
  // Two stores sharing file names: swapping a shard file between them
  // must be caught by the manifest cross-check at load, not served.
  const std::string dir_a = temp_store("mixed_a");
  const std::string dir_b = temp_store("mixed_b");
  ASSERT_TRUE(shard::write_store(fixtures::random_history(9), dir_a,
                                 shard::PlanOptions{2})
                  .ok());
  ASSERT_TRUE(shard::write_store(fixtures::dense_history(4), dir_b,
                                 shard::PlanOptions{2})
                  .ok());
  const auto stolen = shard::read_file_bytes(dir_b + "/shard-001.bin");
  ASSERT_TRUE(stolen.ok());
  ASSERT_TRUE(
      shard::write_file_bytes(dir_a + "/shard-001.bin", stolen.value()).ok());
  auto store = shard::ShardStore::open(dir_a);
  ASSERT_TRUE(store.ok());
  // The load-time cross-check quarantines the foreign file: the typed
  // kUnavailable wrap names the shard and embeds the terminal cause.
  const auto loaded = store.value()->load(1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(loaded.status().message().find("quarantined"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("does not match the manifest"),
            std::string::npos)
      << loaded.status().message();
}

TEST(ShardStore, OpenFailsCleanlyOnMissingDirectory) {
  const auto store = shard::ShardStore::open(temp_store("does_not_exist"));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
}

TEST(ShardStore, BudgetEvictsLeastRecentlyUsed) {
  const cpg::Graph graph = fixtures::dense_history(2);
  const std::string dir = temp_store("lru");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{4});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::uint64_t max_shard = 0;
  for (const auto& info : manifest->shards) {
    max_shard = std::max(max_shard, info.decoded_bytes);
  }
  shard::StoreOptions options;
  options.memory_budget_bytes = max_shard;  // room for ~one shard
  auto opened = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto store = opened.value();

  ASSERT_TRUE(store->load(0).ok());
  ASSERT_TRUE(store->load(1).ok());  // evicts shard 0
  auto stats = store->stats();
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, options.memory_budget_bytes);

  ASSERT_TRUE(store->load(1).ok());  // hit
  EXPECT_EQ(store->stats().hits, 1u);
  ASSERT_TRUE(store->load(0).ok());  // miss again: it was evicted
  EXPECT_EQ(store->stats().loads, 3u);
  EXPECT_LE(store->stats().peak_cache_bytes,
            std::max(options.memory_budget_bytes, max_shard));

  // A pinned shard survives its own eviction.
  const auto pinned = store->load(2);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(store->load(3).ok());
  EXPECT_FALSE(pinned.value()->data.global_ids.empty());
}

TEST(ShardStore, PeakResidentCountsPinnedEvictions) {
  // An evicted-but-pinned shard is still memory: the honest peak must
  // include it, even though the cache already dropped its bytes.
  const cpg::Graph graph = fixtures::dense_history(2);
  const std::string dir = temp_store("pinned_peak");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{4});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::uint64_t max_shard = 0;
  for (const auto& info : manifest->shards) {
    max_shard = std::max(max_shard, info.decoded_bytes);
  }
  shard::StoreOptions options;
  options.memory_budget_bytes = max_shard;  // one shard at a time
  auto opened = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  auto store = opened.value();

  {
    const auto pinned = store->load(0);
    ASSERT_TRUE(pinned.ok());
    ASSERT_TRUE(store->load(1).ok());  // evicts shard 0, which stays pinned
    const auto stats = store->stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_EQ(stats.pinned_bytes, pinned.value()->decoded_bytes);
    EXPECT_GT(stats.pinned_bytes, 0u);
    EXPECT_GE(stats.peak_resident_bytes,
              stats.resident_bytes + pinned.value()->decoded_bytes);
    // Cache accounting still respects the budget even while the pin
    // holds extra memory.
    EXPECT_LE(stats.resident_bytes, options.memory_budget_bytes);
    EXPECT_LE(stats.peak_cache_bytes,
              std::max(options.memory_budget_bytes, max_shard));
  }
  // Dropping the pin drains the pinned tally.
  EXPECT_EQ(store->stats().pinned_bytes, 0u);
}

TEST(ShardStore, UnlimitedBudgetNeverEvicts) {
  const cpg::Graph graph = fixtures::random_history(6);
  const std::string dir = temp_store("unlimited");
  ASSERT_TRUE(shard::write_store(graph, dir, shard::PlanOptions{3}).ok());
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok());
  for (std::uint32_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(store.value()->load(s).ok());
  }
  const auto stats = store.value()->stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_bytes, stats.total_decoded_bytes);
  EXPECT_EQ(stats.peak_resident_bytes, stats.total_decoded_bytes);
  EXPECT_EQ(stats.pinned_bytes, 0u);
}

TEST(ShardFormat, CompressedShardsRoundTrip) {
  const cpg::Graph graph = fixtures::dense_history(5);
  const std::string raw_dir = temp_store("codec_raw");
  const std::string lz_dir = temp_store("codec_lz");
  const auto raw = shard::write_store(graph, raw_dir, shard::PlanOptions{3});
  const auto lz = shard::write_store(graph, lz_dir, shard::PlanOptions{3},
                                     shard::ShardCodec::kLz);
  ASSERT_TRUE(raw.ok()) << raw.status().message();
  ASSERT_TRUE(lz.ok()) << lz.status().message();
  std::uint64_t encoded = 0;
  std::uint64_t decoded = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    const auto& info = lz->shards[s];
    EXPECT_EQ(info.codec, shard::ShardCodec::kLz);
    // Identical decoded body, smaller file.
    EXPECT_EQ(info.decoded_bytes, raw->shards[s].decoded_bytes);
    EXPECT_LT(info.byte_size, raw->shards[s].byte_size);
    encoded += info.byte_size;
    decoded += info.decoded_bytes;
    const auto from_raw = shard::ShardReader::read_shard(raw_dir,
                                                         raw->shards[s]);
    const auto from_lz = shard::ShardReader::read_shard(lz_dir, info);
    ASSERT_TRUE(from_raw.ok()) << from_raw.status().message();
    ASSERT_TRUE(from_lz.ok()) << from_lz.status().message();
    // The decoded payloads are the same shard, field for field.
    EXPECT_EQ(from_lz->global_ids, from_raw->global_ids);
    EXPECT_EQ(from_lz->global_ranks, from_raw->global_ranks);
    EXPECT_EQ(from_lz->edge_globals, from_raw->edge_globals);
    EXPECT_EQ(from_lz->frontier_in, from_raw->frontier_in);
    EXPECT_EQ(from_lz->frontier_out, from_raw->frontier_out);
    EXPECT_EQ(from_lz->graph.stats(), from_raw->graph.stats());
  }
  EXPECT_GT(inspector::snapshot::compression_ratio(decoded, encoded), 1.5)
      << "CPG shard payloads must actually compress";
}

TEST(ShardFormat, CorruptCompressedPayloadIsTypedStatus) {
  // A bit flip inside a compressed body must surface as a typed
  // Status from the reader -- never an exception escaping toward the
  // query boundary.
  const cpg::Graph graph = fixtures::random_history(11);
  const std::string dir = temp_store("corrupt_lz");
  const auto manifest = shard::write_store(graph, dir, shard::PlanOptions{2},
                                           shard::ShardCodec::kLz);
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  auto bytes = shard::read_file_bytes(dir + "/" + manifest->shards[0].file);
  ASSERT_TRUE(bytes.ok());
  auto corrupt = bytes.value();
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(
      shard::write_file_bytes(dir + "/" + manifest->shards[0].file, corrupt)
          .ok());
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok());
  // The damage is caught by the manifest's whole-file checksum before
  // the body even decodes, and the shard is quarantined: kUnavailable
  // wrapping a kDataLoss cause.
  const auto loaded = store.value()->load(0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(loaded.status().message().find("data_loss"), std::string::npos)
      << loaded.status().message();

  // Truncation too: chop the compressed payload.
  auto truncated = bytes.value();
  truncated.resize(truncated.size() - 7);
  const auto reparsed = shard::deserialize_shard(truncated);
  ASSERT_FALSE(reparsed.ok());
  EXPECT_EQ(reparsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardAppend, ExtendsAStoreIncrementally) {
  const cpg::Graph full = fixtures::barrier_history(3, 12);
  const auto prefix = shard::rank_prefix(
      full, static_cast<std::uint32_t>(full.nodes().size() * 6 / 10));
  ASSERT_TRUE(prefix.ok()) << prefix.status().message();
  ASSERT_LT(prefix->nodes().size(), full.nodes().size());
  ASSERT_GT(prefix->nodes().size(), 0u);

  const std::string dir = temp_store("append_incremental");
  const auto base = shard::write_store(*prefix, dir, shard::PlanOptions{4});
  ASSERT_TRUE(base.ok()) << base.status().message();
  // Snapshot the kept files' bytes to prove append leaves them alone.
  std::vector<std::vector<std::uint8_t>> before;
  for (const auto& info : base->shards) {
    auto bytes = shard::read_file_bytes(dir + "/" + info.file);
    ASSERT_TRUE(bytes.ok());
    before.push_back(std::move(bytes).value());
  }

  const auto appended = shard::append(dir, full);
  ASSERT_TRUE(appended.ok()) << appended.status().message();
  EXPECT_GT(appended->shards_kept, 0u)
      << "a barrier-round suffix must leave the early shards untouched";
  EXPECT_GT(appended->shards_rewritten, 0u);
  const auto& manifest = appended->manifest;
  EXPECT_EQ(manifest.total_nodes, full.nodes().size());
  EXPECT_EQ(manifest.total_edges, full.edges().size());
  EXPECT_EQ(manifest.stats, full.stats());
  // Rewritten shards land under generation-suffixed names (crash
  // safety: nothing the old manifest referenced was overwritten), and
  // the superseded files are gone after the manifest committed.
  EXPECT_EQ(manifest.generation, base->generation + 1);
  const std::string gen_tag =
      ".g" + std::to_string(manifest.generation) + ".";
  for (std::uint32_t j = appended->shards_kept; j < manifest.shard_count;
       ++j) {
    EXPECT_NE(manifest.shards[j].file.find(gen_tag), std::string::npos)
        << manifest.shards[j].file;
  }
  for (std::uint32_t j = appended->shards_kept; j < base->shard_count; ++j) {
    EXPECT_FALSE(
        shard::read_file_bytes(dir + "/" + base->shards[j].file).ok())
        << "superseded file " << base->shards[j].file << " not removed";
  }
  for (std::uint32_t j = 0; j < appended->shards_kept; ++j) {
    EXPECT_EQ(manifest.shards[j], base->shards[j]);
    auto bytes = shard::read_file_bytes(dir + "/" + manifest.shards[j].file);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes.value(), before[j]) << "kept shard " << j << " rewritten";
  }
  // The appended store reads back whole: every shard loads and the
  // node universe is covered exactly once.
  const auto reread = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, manifest);
  std::size_t nodes_seen = 0;
  for (const auto& info : manifest.shards) {
    const auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok()) << data.status().message();
    nodes_seen += data->global_ids.size();
    for (std::size_t local = 0; local < data->global_ids.size(); ++local) {
      EXPECT_EQ(data->global_ranks[local],
                full.rank(data->global_ids[local]));
    }
  }
  EXPECT_EQ(nodes_seen, full.nodes().size());
}

TEST(ShardAppend, NoopWhenNothingAppended) {
  const cpg::Graph graph = fixtures::random_history(12);
  const std::string dir = temp_store("append_noop");
  const auto base = shard::write_store(graph, dir, shard::PlanOptions{3});
  ASSERT_TRUE(base.ok()) << base.status().message();
  const auto appended = shard::append(dir, graph);
  ASSERT_TRUE(appended.ok()) << appended.status().message();
  EXPECT_EQ(appended->shards_kept, 3u);
  EXPECT_EQ(appended->shards_rewritten, 0u);
  EXPECT_EQ(appended->manifest, *base);
}

TEST(ShardAppend, StoreAtTheShardCeilingStaysAppendable) {
  // A store already at 255 shards must give a kept shard back rather
  // than becoming permanently un-appendable.
  const cpg::Graph full = fixtures::barrier_history(5, 8);
  const auto prefix = shard::rank_prefix(
      full, static_cast<std::uint32_t>(full.nodes().size() * 6 / 10));
  ASSERT_TRUE(prefix.ok()) << prefix.status().message();
  const std::string dir = temp_store("append_ceiling");
  ASSERT_TRUE(
      shard::write_store(*prefix, dir, shard::PlanOptions{255}).ok());
  const auto appended = shard::append(dir, full);
  ASSERT_TRUE(appended.ok()) << appended.status().message();
  EXPECT_LE(appended->manifest.shard_count, 255u);
  EXPECT_LE(appended->shards_kept, 254u);
  EXPECT_GE(appended->shards_rewritten, 1u);
  EXPECT_EQ(appended->manifest.total_nodes, full.nodes().size());
  // And it still reads back whole.
  std::size_t nodes_seen = 0;
  for (const auto& info : appended->manifest.shards) {
    const auto data = shard::ShardReader::read_shard(dir, info);
    ASSERT_TRUE(data.ok()) << data.status().message();
    nodes_seen += data->global_ids.size();
  }
  EXPECT_EQ(nodes_seen, full.nodes().size());
}

TEST(ShardAppend, RejectsUnrelatedHistories) {
  const std::string dir = temp_store("append_mismatch");
  ASSERT_TRUE(shard::write_store(fixtures::random_history(13), dir,
                                 shard::PlanOptions{2})
                  .ok());
  // A different capture is not an extension of this store.
  const auto wrong = shard::append(dir, fixtures::dense_history(1));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  // A *smaller* capture cannot append either.
  const cpg::Graph full = fixtures::barrier_history(4, 10);
  const auto prefix = shard::rank_prefix(
      full, static_cast<std::uint32_t>(full.nodes().size() / 2));
  ASSERT_TRUE(prefix.ok());
  const std::string dir_full = temp_store("append_shrink");
  ASSERT_TRUE(shard::write_store(full, dir_full, shard::PlanOptions{2}).ok());
  const auto shrink = shard::append(dir_full, *prefix);
  ASSERT_FALSE(shrink.ok());
  EXPECT_EQ(shrink.status().code(), StatusCode::kInvalidArgument);
  // And a missing store is a clean kNotFound.
  const auto missing = shard::append(temp_store("append_missing"), full);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ShardAppend, RankPrefixCutsAreConsistent) {
  const cpg::Graph full = fixtures::barrier_history(7, 9);
  const auto prefix = shard::rank_prefix(
      full, static_cast<std::uint32_t>(full.nodes().size() / 2));
  ASSERT_TRUE(prefix.ok()) << prefix.status().message();
  const std::size_t c = prefix->nodes().size();
  ASSERT_GT(c, 0u);
  ASSERT_LE(c, full.nodes().size() / 2);
  // Ranks and levels of the cut graph match the full graph's -- the
  // property append depends on.
  for (cpg::NodeId id = 0; id < c; ++id) {
    EXPECT_EQ(prefix->rank(id), full.rank(id));
  }
  for (std::size_t e = 0; e < prefix->edges().size(); ++e) {
    EXPECT_EQ(prefix->edges()[e], full.edges()[e]);
  }
}

TEST(ShardedEngine, GraphAccessorThrowsAndStoreAccessorWorks) {
  const cpg::Graph graph = fixtures::random_history(7);
  const std::string dir = temp_store("accessors");
  ASSERT_TRUE(shard::write_store(graph, dir, shard::PlanOptions{2}).ok());
  auto store = shard::ShardStore::open(dir);
  ASSERT_TRUE(store.ok());
  shard::ShardedQueryEngine engine(store.value());
  EXPECT_EQ(engine.store().manifest().total_nodes, graph.nodes().size());
  EXPECT_THROW((void)engine.graph(), std::logic_error);
  // And the engine still answers queries (smoke).
  const auto reply = engine.run(query::StatsQuery{});
  ASSERT_TRUE(reply.ok()) << reply.status().message();
}

}  // namespace
