// Sharded replies are byte-identical to the unsharded engine.
//
// The contract of src/shard/: for any captured history, a
// ShardedQueryEngine over a store written at any shard count serves
// the exact reply stream -- per-query statuses, payload bytes, cursor
// ids, and cursor page boundaries -- the unsharded QueryEngine serves
// from the in-memory graph, at every worker count. That holds for
// every way a store can exist on disk: written raw, written with
// LZ-compressed payloads, grown by an incremental append, or both.
// Randomized histories come from tests/history_fixtures.h; the
// serialized-session shape mirrors tests/query_determinism_test.cpp
// so the two contracts cannot drift apart.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "history_fixtures.h"
#include "query/engine.h"
#include "query/wire.h"
#include "shard/engine.h"
#include "shard/planner.h"
#include "shard/store.h"
#include "snapshot/compress.h"
#include "util/parallel.h"

namespace {

using namespace inspector;
using namespace inspector::query;
namespace fixtures = inspector::fixtures;

/// One mixed batch -- paginated list queries, scalar queries, and
/// deliberately invalid requests -- followed by a full drain of every
/// cursor, all serialized to wire bytes.
std::string serialized_session(QueryEngine& engine, cpg::NodeId last,
                               std::uint64_t first_page) {
  const auto paged = [](Query q, std::uint64_t page_size) {
    QueryOptions options;
    options.page_size = page_size;
    return QueryEngine::BatchItem{std::move(q), options};
  };
  const std::vector<QueryEngine::BatchItem> items = {
      paged(BackwardSliceQuery{last}, 7),
      paged(ForwardSliceQuery{0}, 5),
      paged(RacesQuery{}, 13),
      {RacesQuery{3, {first_page}}, {}},  // limited + ignored pages
      paged(TaintQuery{{0, 3, 7}, true}, 9),
      {TaintQuery{{0, 3, 7}, false}, {}},  // no register carry-over
      paged(InvalidateQuery{{0, 3, 7}}, 11),
      paged(CriticalPathQuery{}, 6),
      {StatsQuery{}, {}},
      {HappensBeforeQuery{0, last}, {}},
      paged(PageAccessorsQuery{first_page}, 4),
      paged(LatestWritersQuery{last}, 3),
      paged(DataDependenciesQuery{last}, 3),
      {BackwardSliceQuery{static_cast<cpg::NodeId>(1u << 30)}, {}},  // error
      {PageAccessorsQuery{0xDEADBEEF}, {}},                          // error
  };
  const auto replies = engine.run_batch(QueryEngine::kDefaultSession, items);

  std::string out;
  std::uint64_t id = 1;
  std::vector<std::uint64_t> cursors;
  for (const auto& reply : replies) {
    out += wire::serialize_reply(id++, reply);
    out += '\n';
    if (reply.ok() && reply->cursor != 0) cursors.push_back(reply->cursor);
  }
  // Drain every cursor to exhaustion, plus one fetch past the end so
  // the kExhausted reply bytes are part of the comparison too.
  for (const std::uint64_t cursor : cursors) {
    while (true) {
      const auto page = engine.next(cursor);
      out += wire::serialize_reply(id++, page);
      out += '\n';
      if (!page.ok() || !page->has_more) break;
    }
    out += wire::serialize_reply(id++, engine.next(cursor));
    out += '\n';
  }
  return out;
}

std::string store_dir(std::uint64_t seed, std::uint32_t shards,
                      unsigned workers) {
  return ::testing::TempDir() + "shard_prop_" + std::to_string(seed) + "_" +
         std::to_string(shards) + "_" + std::to_string(workers);
}

class ShardProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardProperty, RepliesIdenticalAcrossShardAndWorkerCounts) {
  fixtures::ThreadCountGuard guard;
  const std::uint64_t seed = GetParam();

  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(seed);
  const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
  const std::uint64_t first_page =
      source.page_count() > 0 ? source.pages()[0] : 0;
  std::string reference;
  {
    QueryEngine engine(std::make_shared<const cpg::Graph>(source));
    reference = serialized_session(engine, last, first_page);
  }
  ASSERT_FALSE(reference.empty());

  for (const std::uint32_t shards : {1u, 2u, 7u}) {
    for (const unsigned workers : {1u, 8u}) {
      util::set_analysis_threads(workers);
      // Rebuild the history and the store under this worker count too:
      // the plan, the shard payloads, and the replies must all be
      // independent of the pool size.
      const cpg::Graph graph = fixtures::random_history(seed);
      for (const auto codec :
           {shard::ShardCodec::kRaw, shard::ShardCodec::kLz}) {
        const std::string dir =
            store_dir(seed, shards, workers) +
            (codec == shard::ShardCodec::kLz ? "_lz" : "");
        const auto manifest = shard::write_store(
            graph, dir, shard::PlanOptions{shards}, codec);
        ASSERT_TRUE(manifest.ok()) << manifest.status().message();
        EXPECT_EQ(manifest->shard_count, shards);
        EXPECT_EQ(manifest->total_nodes, graph.nodes().size());

        auto store = shard::ShardStore::open(dir);
        ASSERT_TRUE(store.ok()) << store.status().message();
        shard::ShardedQueryEngine engine(std::move(store).value());
        EXPECT_EQ(serialized_session(engine, last, first_page), reference)
            << "seed " << seed << ", " << shards << " shard(s), " << workers
            << " worker(s), codec "
            << (codec == shard::ShardCodec::kLz ? "lz" : "raw");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, ShardProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

// Dense histories engage the multi-chunk scans and parallel sorts
// underneath both the store build and the sharded analyses.
TEST(ShardPropertyDense, RepliesIdenticalAcrossShardCounts) {
  fixtures::ThreadCountGuard guard;
  for (const std::uint64_t seed : {1ULL, 5ULL}) {
    util::set_analysis_threads(1);
    const cpg::Graph source = fixtures::dense_history(seed);
    const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
    const std::uint64_t first_page = source.pages()[0];
    std::string reference;
    {
      QueryEngine engine(std::make_shared<const cpg::Graph>(source));
      reference = serialized_session(engine, last, first_page);
    }
    EXPECT_GT(reference.size(), 1000u);
    for (const std::uint32_t shards : {2u, 7u}) {
      util::set_analysis_threads(8);
      const std::string dir =
          ::testing::TempDir() + "shard_prop_dense_" + std::to_string(seed) +
          "_" + std::to_string(shards);
      const auto manifest =
          shard::write_store(source, dir, shard::PlanOptions{shards});
      ASSERT_TRUE(manifest.ok()) << manifest.status().message();
      auto store = shard::ShardStore::open(dir);
      ASSERT_TRUE(store.ok()) << store.status().message();
      shard::ShardedQueryEngine engine(std::move(store).value());
      EXPECT_EQ(serialized_session(engine, last, first_page), reference)
          << "dense seed " << seed << ", " << shards << " shard(s)";
    }
  }
}

// Appended stores serve the same bytes: a store written from a clean
// rank-prefix of the capture and then grown by shard::append() must be
// indistinguishable on the wire from a store written whole -- raw,
// compressed, and compressed+appended alike, at every shard count and
// worker count.
TEST(ShardPropertyAppend, AppendedStoresByteIdentical) {
  fixtures::ThreadCountGuard guard;
  for (const std::uint64_t seed : {2ULL, 6ULL}) {
    util::set_analysis_threads(1);
    const cpg::Graph source = fixtures::barrier_history(seed, 10);
    const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
    const std::uint64_t first_page = source.pages()[0];
    std::string reference;
    {
      QueryEngine engine(std::make_shared<const cpg::Graph>(source));
      reference = serialized_session(engine, last, first_page);
    }
    ASSERT_FALSE(reference.empty());

    for (const std::uint32_t shards : {1u, 2u, 7u}) {
      for (const unsigned workers : {1u, 8u}) {
        util::set_analysis_threads(workers);
        const cpg::Graph graph = fixtures::barrier_history(seed, 10);
        const auto prefix = shard::rank_prefix(
            graph, static_cast<std::uint32_t>(graph.nodes().size() * 6 / 10));
        ASSERT_TRUE(prefix.ok()) << prefix.status().message();
        ASSERT_LT(prefix->nodes().size(), graph.nodes().size());
        for (const auto codec :
             {shard::ShardCodec::kRaw, shard::ShardCodec::kLz}) {
          const std::string dir =
              ::testing::TempDir() + "shard_prop_append_" +
              std::to_string(seed) + "_" + std::to_string(shards) + "_" +
              std::to_string(workers) +
              (codec == shard::ShardCodec::kLz ? "_lz" : "");
          const auto base = shard::write_store(
              *prefix, dir, shard::PlanOptions{shards}, codec);
          ASSERT_TRUE(base.ok()) << base.status().message();
          // The appended codec is inherited from the store (no
          // explicit option), so compressed stores stay compressed.
          const auto appended = shard::append(dir, graph);
          ASSERT_TRUE(appended.ok()) << appended.status().message();
          EXPECT_EQ(appended->manifest.total_nodes, graph.nodes().size());
          if (codec == shard::ShardCodec::kLz) {
            for (const auto& info : appended->manifest.shards) {
              EXPECT_EQ(info.codec, shard::ShardCodec::kLz);
            }
          }
          auto store = shard::ShardStore::open(dir);
          ASSERT_TRUE(store.ok()) << store.status().message();
          shard::ShardedQueryEngine engine(std::move(store).value());
          EXPECT_EQ(serialized_session(engine, last, first_page), reference)
              << "seed " << seed << ", " << shards << " shard(s), "
              << workers << " worker(s), codec "
              << (codec == shard::ShardCodec::kLz ? "lz" : "raw");
        }
      }
    }
  }
}

// Compressed out-of-core serving: the decoded-byte budget still forces
// evictions, the cache stays under it, and the store actually shrank
// on disk.
TEST(ShardPropertyCompressed, TightBudgetByteIdenticalWithRealRatio) {
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::dense_history(3);
  const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
  const std::uint64_t first_page = source.pages()[0];
  std::string reference;
  {
    QueryEngine engine(std::make_shared<const cpg::Graph>(source));
    reference = serialized_session(engine, last, first_page);
  }
  const std::string dir = ::testing::TempDir() + "shard_prop_lz_budget";
  const auto manifest = shard::write_store(source, dir, shard::PlanOptions{7},
                                           shard::ShardCodec::kLz);
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::uint64_t encoded = 0;
  std::uint64_t decoded = 0;
  std::uint64_t max_decoded = 0;
  for (const auto& info : manifest->shards) {
    encoded += info.byte_size;
    decoded += info.decoded_bytes;
    max_decoded = std::max(max_decoded, info.decoded_bytes);
  }
  EXPECT_GT(snapshot::compression_ratio(decoded, encoded), 1.5)
      << decoded << " decoded vs " << encoded << " encoded";
  shard::StoreOptions options;
  options.memory_budget_bytes = max_decoded * 2;
  ASSERT_LT(options.memory_budget_bytes, decoded);
  auto store = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().message();
  const auto store_ptr = store.value();
  shard::ShardedQueryEngine engine(store_ptr);
  EXPECT_EQ(serialized_session(engine, last, first_page), reference);
  const auto stats = store_ptr->stats();
  EXPECT_GT(stats.evictions, 0u) << "budget never forced an eviction";
  EXPECT_LE(stats.peak_cache_bytes,
            std::max(options.memory_budget_bytes, max_decoded));
  EXPECT_EQ(stats.total_decoded_bytes, decoded);
  EXPECT_EQ(stats.total_bytes, encoded);
}

// Out-of-core: a resident budget smaller than the store still serves
// the full session correctly, evicting and reloading shards under it.
TEST(ShardPropertyBudget, TightBudgetStillByteIdentical) {
  fixtures::ThreadCountGuard guard;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::dense_history(3);
  const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
  const std::uint64_t first_page = source.pages()[0];
  std::string reference;
  {
    QueryEngine engine(std::make_shared<const cpg::Graph>(source));
    reference = serialized_session(engine, last, first_page);
  }
  const std::string dir = ::testing::TempDir() + "shard_prop_budget";
  const auto manifest = shard::write_store(source, dir, shard::PlanOptions{7});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  std::uint64_t total_decoded = 0;
  std::uint64_t max_shard = 0;
  for (const auto& info : manifest->shards) {
    total_decoded += info.decoded_bytes;
    max_shard = std::max(max_shard, info.decoded_bytes);
  }
  // Room for about two shards: far below the store, above one shard.
  shard::StoreOptions options;
  options.memory_budget_bytes = max_shard * 2;
  ASSERT_LT(options.memory_budget_bytes, total_decoded);
  auto store = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().message();
  const auto store_ptr = store.value();
  shard::ShardedQueryEngine engine(store_ptr);
  EXPECT_EQ(serialized_session(engine, last, first_page), reference);
  const auto stats = store_ptr->stats();
  EXPECT_GT(stats.evictions, 0u) << "budget never forced an eviction";
  EXPECT_LE(stats.peak_cache_bytes,
            std::max(options.memory_budget_bytes, max_shard));
  EXPECT_LT(stats.peak_cache_bytes, stats.total_decoded_bytes);
}

}  // namespace
