// Equivalence of the indexed CPG queries against brute force.
//
// Graph::data_dependencies / latest_writers / writers_of_page /
// readers_of_page answer from the page inverted index built at
// construction. These tests keep the original all-nodes-scan
// implementations as the reference and assert set-equality on
// randomized recorder histories, so any index bug (bad rank, wrong
// bucket boundaries, over-eager pruning) shows up as a divergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "analysis/races.h"
#include "cpg/recorder.h"

namespace {

using namespace inspector::cpg;
namespace sync = inspector::sync;
using inspector::PageSet;

// --- brute-force reference implementations (the seed's O(nodes) scans) --

std::vector<NodeId> brute_writers_of_page(const Graph& g, std::uint64_t page) {
  std::vector<NodeId> result;
  for (const auto& n : g.nodes()) {
    if (n.writes_page(page)) result.push_back(n.id);
  }
  return result;
}

std::vector<NodeId> brute_readers_of_page(const Graph& g, std::uint64_t page) {
  std::vector<NodeId> result;
  for (const auto& n : g.nodes()) {
    if (n.reads_page(page)) result.push_back(n.id);
  }
  return result;
}

std::vector<Edge> brute_data_dependencies(const Graph& g, NodeId reader) {
  const auto& r = g.node(reader);
  std::vector<Edge> result;
  for (const auto& w : g.nodes()) {
    if (w.id == reader) continue;
    if (!g.happens_before(w.id, reader)) continue;
    for (std::uint64_t page : r.read_set) {
      if (w.writes_page(page)) {
        result.push_back({w.id, reader, EdgeKind::kData, page});
      }
    }
  }
  return result;
}

std::vector<Edge> brute_latest_writers(const Graph& g, NodeId reader) {
  const auto& r = g.node(reader);
  std::vector<Edge> result;
  for (std::uint64_t page : r.read_set) {
    std::vector<NodeId> candidates;
    for (const auto& w : g.nodes()) {
      if (w.id != reader && g.happens_before(w.id, reader) &&
          w.writes_page(page)) {
        candidates.push_back(w.id);
      }
    }
    for (NodeId c : candidates) {
      const bool superseded = std::any_of(
          candidates.begin(), candidates.end(),
          [&](NodeId d) { return d != c && g.happens_before(c, d); });
      if (!superseded) result.push_back({c, reader, EdgeKind::kData, page});
    }
  }
  return result;
}

// The seed's O(n^2) pairwise race scan, kept as the reference for the
// page-major detector.
std::vector<inspector::analysis::RaceReport> brute_find_races(const Graph& g) {
  namespace analysis = inspector::analysis;
  std::vector<analysis::RaceReport> races;
  const auto first_common =
      [](const PageSet& a, const PageSet& b) -> std::optional<std::uint64_t> {
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
      if (*ia < *ib) {
        ++ia;
      } else if (*ib < *ia) {
        ++ib;
      } else {
        return *ia;
      }
    }
    return std::nullopt;
  };
  const auto& nodes = g.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const auto& a = nodes[i];
      const auto& b = nodes[j];
      if (a.thread == b.thread) continue;
      const auto ww = first_common(a.write_set, b.write_set);
      const auto rw =
          ww ? std::nullopt : first_common(a.write_set, b.read_set);
      const auto wr =
          (ww || rw) ? std::nullopt : first_common(a.read_set, b.write_set);
      if (!ww && !rw && !wr) continue;
      if (!g.concurrent(a.id, b.id)) continue;
      analysis::RaceReport report;
      report.first = a.id;
      report.second = b.id;
      report.page = ww ? *ww : (rw ? *rw : *wr);
      report.write_write = ww.has_value();
      races.push_back(report);
    }
  }
  return races;
}

// --- set-equality helpers ----------------------------------------------

std::vector<Edge> canonical(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.object < b.object;
  });
  return edges;
}

std::vector<NodeId> canonical(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

// --- randomized histories ----------------------------------------------

constexpr std::uint64_t kPageUniverse = 16;

PageSet random_pages(std::mt19937_64& rng) {
  // Deliberately unsorted with possible duplicates: the recorder owns
  // the normalize step and these histories exercise it.
  PageSet pages;
  const std::size_t count = rng() % 6;
  for (std::size_t i = 0; i < count; ++i) {
    pages.push_back(rng() % kPageUniverse);
  }
  return pages;
}

Graph random_history(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::uint32_t threads = 2 + rng() % 4;
  const std::uint32_t mutexes = 1 + rng() % 3;
  Recorder rec;
  for (std::uint32_t t = 0; t < threads; ++t) rec.thread_started(t, t);
  const std::size_t steps = 30 + rng() % 50;
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint32_t t = rng() % threads;
    const auto m = sync::make_object_id(sync::ObjectKind::kMutex,
                                        1 + rng() % mutexes);
    switch (rng() % 4) {
      case 0:
      case 1:
        rec.end_subcomputation(t, random_pages(rng), random_pages(rng),
                               {sync::SyncEventKind::kMutexLock, m});
        break;
      case 2:
        rec.on_release(t, m);
        break;
      default:
        rec.on_acquire(t, m);
        break;
    }
  }
  for (std::uint32_t t = 0; t < threads; ++t) {
    rec.thread_exiting(t, random_pages(rng), random_pages(rng));
  }
  return std::move(rec).finalize();
}

class QueryIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryIndexProperty, GraphValidates) {
  const Graph g = random_history(GetParam());
  std::string reason;
  EXPECT_TRUE(g.validate(&reason)) << reason;
}

TEST_P(QueryIndexProperty, PageIndexMatchesBruteForce) {
  const Graph g = random_history(GetParam());
  // Sweep past the universe edge to cover untouched pages too.
  for (std::uint64_t page = 0; page < kPageUniverse + 2; ++page) {
    EXPECT_EQ(canonical(g.writers_of_page(page)),
              canonical(brute_writers_of_page(g, page)))
        << "writers of page " << page;
    EXPECT_EQ(canonical(g.readers_of_page(page)),
              canonical(brute_readers_of_page(g, page)))
        << "readers of page " << page;
  }
}

TEST_P(QueryIndexProperty, DataDependenciesMatchBruteForce) {
  const Graph g = random_history(GetParam());
  for (const auto& n : g.nodes()) {
    EXPECT_EQ(canonical(g.data_dependencies(n.id)),
              canonical(brute_data_dependencies(g, n.id)))
        << "data dependencies of node " << n.id;
  }
}

TEST_P(QueryIndexProperty, LatestWritersMatchBruteForce) {
  const Graph g = random_history(GetParam());
  for (const auto& n : g.nodes()) {
    EXPECT_EQ(canonical(g.latest_writers(n.id)),
              canonical(brute_latest_writers(g, n.id)))
        << "latest writers of node " << n.id;
  }
}

TEST_P(QueryIndexProperty, RankEmbedsHappensBefore) {
  const Graph g = random_history(GetParam());
  for (const auto& a : g.nodes()) {
    for (const auto& b : g.nodes()) {
      if (g.happens_before(a.id, b.id)) {
        EXPECT_LT(g.rank(a.id), g.rank(b.id))
            << "rank must embed happens-before: " << a.id << " hb " << b.id;
      }
    }
  }
}

TEST_P(QueryIndexProperty, RaceScanMatchesBruteForce) {
  namespace analysis = inspector::analysis;
  const Graph g = random_history(GetParam());
  const auto indexed = analysis::find_races(g);
  const auto brute = brute_find_races(g);
  ASSERT_EQ(indexed.size(), brute.size());
  for (std::size_t i = 0; i < indexed.size(); ++i) {
    EXPECT_EQ(indexed[i], brute[i]) << "race " << i;
  }
  // A limited scan must return a prefix-sized subset with the same
  // per-pair classification as the full scan.
  if (!brute.empty()) {
    analysis::RaceOptions limit_one;
    limit_one.limit = 1;
    const auto limited = analysis::find_races(g, limit_one);
    ASSERT_EQ(limited.size(), 1u);
    EXPECT_TRUE(std::find(brute.begin(), brute.end(), limited.front()) !=
                brute.end())
        << "limited report must match the full scan's report for that pair";
  }
}

TEST_P(QueryIndexProperty, FindMatchesLinearScan) {
  const Graph g = random_history(GetParam());
  for (std::size_t t = 0; t < g.thread_count() + 1; ++t) {
    const auto tid = static_cast<ThreadId>(t);
    for (std::uint64_t alpha = 0; alpha < g.nodes().size() + 1; ++alpha) {
      std::optional<NodeId> expected;
      for (NodeId id : g.thread_nodes(tid)) {
        if (g.node(id).alpha == alpha) expected = id;
      }
      EXPECT_EQ(g.find(tid, alpha), expected)
          << "find(" << t << ", " << alpha << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, QueryIndexProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
