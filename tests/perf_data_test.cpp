// perf.data container tests: capture, binary round trip, file I/O, and
// offline decoding of a persisted trace.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/inspector.h"
#include "perf/data_file.h"
#include "ptsim/flow.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;

perf::DataFile sample_file() {
  perf::PerfSession session("inspector");
  session.attach_root(1, 0);
  session.on_mmap(1, 0x7F0000000000, 4096, "input.bin", 1);
  session.on_fork(1, 2, 2);
  auto* e1 = session.encoder_for(1);
  e1->on_enable(0x1000);
  for (int i = 0; i < 100; ++i) e1->on_conditional(i % 2 == 0);
  e1->on_disable();
  auto* e2 = session.encoder_for(2);
  e2->on_enable(0x2000);
  e2->on_indirect(0x3000);
  e2->on_disable();
  session.on_exit(2, 9);
  session.on_exit(1, 10);
  return perf::capture(session);
}

TEST(PerfData, CaptureCollectsRecordsAndStreams) {
  const auto file = sample_file();
  EXPECT_GE(file.records.size(), 6u);
  ASSERT_EQ(file.aux.size(), 2u);
  ASSERT_NE(file.stream_for(1), nullptr);
  ASSERT_NE(file.stream_for(2), nullptr);
  EXPECT_EQ(file.stream_for(99), nullptr);
  EXPECT_FALSE(file.stream_for(1)->empty());
}

TEST(PerfData, BinaryRoundTrip) {
  const auto file = sample_file();
  const auto back = perf::deserialize(perf::serialize(file));
  EXPECT_EQ(back.records, file.records);
  ASSERT_EQ(back.aux.size(), file.aux.size());
  for (std::size_t i = 0; i < file.aux.size(); ++i) {
    EXPECT_EQ(back.aux[i].pid, file.aux[i].pid);
    EXPECT_EQ(back.aux[i].data, file.aux[i].data);
  }
}

TEST(PerfData, BadMagicAndTruncationThrow) {
  auto bytes = perf::serialize(sample_file());
  auto corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_THROW((void)perf::deserialize(corrupt), std::runtime_error);
  bytes.resize(bytes.size() / 3);
  EXPECT_THROW((void)perf::deserialize(bytes), std::runtime_error);
}

TEST(PerfData, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/inspector_perf.data";
  const auto file = sample_file();
  perf::save(file, path);
  const auto back = perf::load(path);
  EXPECT_EQ(back.records, file.records);
  EXPECT_EQ(back.aux.size(), file.aux.size());
  std::remove(path.c_str());
}

TEST(PerfData, LoadMissingFileThrows) {
  EXPECT_THROW((void)perf::load("/nonexistent/inspector.data"),
               std::runtime_error);
}

TEST(PerfData, PersistedTraceDecodesOffline) {
  // Full offline loop: run a workload, persist the session, reload it,
  // decode the loaded AUX data against the image -- the "perf script"
  // post-processing of §V-B.
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  const auto program = workloads::make_string_match(config);
  core::Inspector insp;
  const auto result = insp.run(program);

  const auto file = perf::capture(*result.perf_session);
  const auto back = perf::deserialize(perf::serialize(file));

  std::uint64_t decoded_branches = 0;
  for (const auto& stream : back.aux) {
    ptsim::FlowDecoder decoder(result.image->image, stream.data);
    const auto flow = decoder.run();
    for (const auto& e : flow.events) {
      if (e.kind == ptsim::BranchEvent::Kind::kConditional ||
          e.kind == ptsim::BranchEvent::Kind::kIndirect) {
        ++decoded_branches;
      }
    }
  }
  EXPECT_EQ(decoded_branches, result.stats.branches)
      << "offline decode of the persisted trace must see every branch";
}

}  // namespace
