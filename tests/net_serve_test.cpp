// End-to-end tests for the serving tier over real AF_UNIX sockets:
// served sessions must be byte-identical to the in-process engine
// (the PR-4 reply contract extended across the process boundary),
// Cancel must free one stream without corrupting its neighbors, and a
// dead worker behind the router must surface as typed kUnavailable --
// or transparent failover under degraded serving -- never a hang.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "cpg/graph.h"
#include "net/client.h"
#include "net/dispatcher.h"
#include "net/query_service.h"
#include "net/router.h"
#include "net/uds.h"
#include "query/engine.h"
#include "query/wire.h"
#include "shard/engine.h"
#include "shard/planner.h"
#include "shard/store.h"
#include "history_fixtures.h"

namespace {

using namespace inspector;

std::string socket_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::string> request_lines() {
  return {
      R"({"id":1,"op":"stats"})",
      R"({"id":2,"op":"critical_path","page_size":3})",
      R"({"id":3,"op":"next","cursor":1})",
      R"({"id":4,"op":"next","cursor":1})",
      R"({"id":5,"op":"backward_slice","node":0})",
      R"({"id":6,"op":"forward_slice","node":1,"page_size":4})",
      R"({"id":7,"op":"next","cursor":2})",
      R"({"id":8,"op":"races","limit":5})",
      R"({"id":9,"op":"latest_writers","node":2})",
      R"({"id":10,"op":"next","cursor":99})",
      R"({"id":11,"op":"bogus"})",
  };
}

/// What the stdin front-end would print: one serial engine session,
/// requests executed in order. This is the byte-identity oracle for
/// every transport configuration below.
std::vector<std::string> reference_replies(
    const std::shared_ptr<const cpg::Graph>& graph,
    const std::vector<std::string>& lines) {
  query::QueryEngine engine(graph);
  std::vector<std::string> replies;
  for (const std::string& line : lines) {
    std::uint64_t id = 0;
    const auto parsed = query::wire::parse_request(line, &id);
    if (!parsed.ok()) {
      replies.push_back(query::wire::serialize_reply(
          id, query::Result<query::Reply>(parsed.status())));
      continue;
    }
    if (const auto* next =
            std::get_if<query::wire::NextRequest>(&parsed.value().op)) {
      replies.push_back(
          query::wire::serialize_reply(id, engine.next(next->cursor)));
      continue;
    }
    query::QueryOptions options;
    options.page_size = parsed.value().page_size;
    replies.push_back(query::wire::serialize_reply(
        id, engine.run(std::get<query::Query>(parsed.value().op), options)));
  }
  return replies;
}

/// Replay `lines` through one client connection, pipelined, and
/// return the replies in order.
std::vector<std::string> replay(const std::string& path,
                                const std::vector<std::string>& lines) {
  auto client = net::QueryClient::connect(path);
  EXPECT_TRUE(client.ok()) << client.status().message();
  if (!client.ok()) return {};
  for (const std::string& line : lines) {
    const auto id = (*client)->send(line);
    EXPECT_TRUE(id.ok()) << id.status().message();
  }
  std::vector<std::string> replies;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto reply = (*client)->next_reply();
    EXPECT_TRUE(reply.ok()) << reply.status().message();
    if (!reply.ok()) break;
    replies.push_back(std::move(reply).value());
  }
  EXPECT_TRUE((*client)->goodbye().ok());
  return replies;
}

TEST(NetServe, ConcurrentClientsMatchInProcessEngine) {
  const auto graph =
      std::make_shared<const cpg::Graph>(fixtures::random_history(7));
  const auto lines = request_lines();
  const auto expected = reference_replies(graph, lines);

  net::QueryService service(std::make_shared<query::QueryEngine>(graph));
  auto server = net::uds::Server::listen(socket_path("net_serve_basic.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop loop(std::move(server).value(), service);
  loop.start();

  // Each connection gets its own engine session, so every client must
  // see the exact same reply bytes -- cursor ids included.
  constexpr int kClients = 3;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(
        [&, c] { got[c] = replay(loop.path(), lines); });
  }
  for (auto& t : clients) t.join();
  loop.stop();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected) << "client " << c;
  }
}

TEST(NetServe, TinyFramesReassembleIdentically) {
  const auto graph =
      std::make_shared<const cpg::Graph>(fixtures::random_history(3));
  const auto lines = request_lines();
  const auto expected = reference_replies(graph, lines);

  net::QueryService service(std::make_shared<query::QueryEngine>(graph));
  net::DispatcherOptions options;
  options.max_frame_payload = 8;  // every reply spans many Data frames
  auto server = net::uds::Server::listen(socket_path("net_serve_tiny.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop loop(std::move(server).value(), service, options);
  loop.start();

  EXPECT_EQ(replay(loop.path(), lines), expected);
  loop.stop();
}

/// A service whose requests echo back from the finalizer -- except the
/// literal request "block", whose phase 1 parks until its stream is
/// cancelled. Exercises Cancel against a genuinely in-flight request.
class GateService final : public net::rpc::Service {
 public:
  GateService() {
    registry_.add("echo", [](net::rpc::Session&, const net::rpc::Context& ctx,
                             std::string_view request) -> net::rpc::Finalizer {
      if (request == "block") {
        while (!ctx.is_cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return [] { return std::string("cancelled streams never reply"); };
      }
      std::string copy(request);
      return [copy] { return "ok:" + copy; };
    });
  }

  [[nodiscard]] std::unique_ptr<net::rpc::Session> open_session() override {
    return std::make_unique<net::rpc::Session>();
  }
  [[nodiscard]] const net::rpc::Registry& registry() const override {
    return registry_;
  }
  [[nodiscard]] std::string method_of(std::string_view) const override {
    return "echo";
  }

 private:
  net::rpc::Registry registry_;
};

TEST(NetServe, CancelFreesStreamWithoutCorruptingNeighbors) {
  GateService service;
  auto server = net::uds::Server::listen(socket_path("net_serve_cancel.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop loop(std::move(server).value(), service);
  loop.start();

  auto client = net::QueryClient::connect(loop.path());
  ASSERT_TRUE(client.ok()) << client.status().message();
  ASSERT_TRUE((*client)->send("alpha").ok());
  const auto blocked = (*client)->send("block");
  ASSERT_TRUE(blocked.ok());
  ASSERT_TRUE((*client)->send("beta").ok());
  ASSERT_TRUE((*client)->send("gamma").ok());
  // The blocked stream holds the reply head until cancelled; its
  // neighbors' replies must then flow through intact and in order.
  ASSERT_TRUE((*client)->cancel(*blocked).ok());

  std::vector<std::string> replies;
  for (int i = 0; i < 3; ++i) {
    auto reply = (*client)->next_reply();
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    replies.push_back(std::move(reply).value());
  }
  EXPECT_EQ(replies,
            (std::vector<std::string>{"ok:alpha", "ok:beta", "ok:gamma"}));

  // Drain cleanly: no fourth reply exists, and goodbye must complete
  // (the cancelled stream cannot wedge the connection).
  ASSERT_TRUE((*client)->goodbye().ok());
  const auto after = (*client)->next_reply();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kExhausted);
  loop.stop();
}

/// Everything a router test needs: a store on disk, one QueryService
/// ServeLoop per worker, and the manifest for the RouterService.
struct RouterRig {
  std::shared_ptr<const cpg::Graph> graph;
  shard::Manifest manifest;
  std::vector<net::WorkerEndpoint> endpoints;
  std::vector<std::unique_ptr<net::QueryService>> services;
  std::vector<std::unique_ptr<net::ServeLoop>> loops;

  /// Worker preferred for `node` under the rig's shard split.
  [[nodiscard]] std::size_t worker_of(cpg::NodeId node) const {
    const std::uint32_t shard = manifest.node_shard[node];
    for (std::size_t w = 0; w < endpoints.size(); ++w) {
      if (shard >= endpoints[w].shard_lo && shard < endpoints[w].shard_hi) {
        return w;
      }
    }
    return 0;
  }
};

RouterRig make_rig(const std::string& name, std::uint64_t seed,
                   std::uint32_t workers) {
  RouterRig rig;
  rig.graph = std::make_shared<const cpg::Graph>(fixtures::random_history(seed));
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  auto manifest = shard::write_store(*rig.graph, dir, shard::PlanOptions{3});
  EXPECT_TRUE(manifest.ok()) << manifest.status().message();
  rig.manifest = std::move(manifest).value();
  for (std::uint32_t w = 0; w < workers; ++w) {
    net::WorkerEndpoint ep;
    ep.socket_path = socket_path(name + ".w" + std::to_string(w) + ".sock");
    ep.shard_lo = rig.manifest.shard_count * w / workers;
    ep.shard_hi = rig.manifest.shard_count * (w + 1) / workers;
    auto store = shard::ShardStore::open(dir);
    EXPECT_TRUE(store.ok()) << store.status().message();
    rig.services.push_back(std::make_unique<net::QueryService>(
        std::make_shared<shard::ShardedQueryEngine>(std::move(store).value())));
    auto server = net::uds::Server::listen(ep.socket_path);
    EXPECT_TRUE(server.ok()) << server.status().message();
    rig.loops.push_back(std::make_unique<net::ServeLoop>(
        std::move(server).value(), *rig.services.back()));
    rig.loops.back()->start();
    rig.endpoints.push_back(std::move(ep));
  }
  return rig;
}

TEST(NetServe, RouterMatchesInProcessEngine) {
  RouterRig rig = make_rig("net_router_ok", 7, 2);
  const auto lines = request_lines();
  const auto expected = reference_replies(rig.graph, lines);

  net::RouterService router(rig.manifest, rig.endpoints);
  auto server = net::uds::Server::listen(socket_path("net_router_ok.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop front(std::move(server).value(), router);
  front.start();

  EXPECT_EQ(replay(front.path(), lines), expected);
  front.stop();
}

TEST(NetServe, ConcurrentClientsThroughRouter) {
  RouterRig rig = make_rig("net_router_multi", 7, 2);
  const auto lines = request_lines();
  const auto expected = reference_replies(rig.graph, lines);

  net::RouterService router(rig.manifest, rig.endpoints);
  auto server = net::uds::Server::listen(socket_path("net_router_multi.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop front(std::move(server).value(), router);
  front.start();

  constexpr int kClients = 3;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(
        [&, c] { got[c] = replay(front.path(), lines); });
  }
  for (auto& t : clients) t.join();
  front.stop();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected) << "client " << c;
  }
}

// Regression: a client disconnect tears down its session's worker
// links, and the resulting channel EOF must NOT be mistaken for the
// worker dying -- the sticky service-wide ledger would answer every
// later session with kUnavailable.
TEST(NetServe, SequentialSessionsDoNotPoisonWorkers) {
  RouterRig rig = make_rig("net_router_seq", 7, 2);
  const auto lines = request_lines();
  const auto expected = reference_replies(rig.graph, lines);

  net::RouterService router(rig.manifest, rig.endpoints);
  auto server = net::uds::Server::listen(socket_path("net_router_seq.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop front(std::move(server).value(), router);
  front.start();

  EXPECT_EQ(replay(front.path(), lines), expected) << "first session";
  EXPECT_EQ(replay(front.path(), lines), expected) << "second session";
  front.stop();
}

TEST(NetServe, DeadWorkerYieldsTypedUnavailable) {
  RouterRig rig = make_rig("net_router_kill", 7, 2);

  // One node per worker, so one query must fail and one must succeed.
  cpg::NodeId on_w0 = 0, on_w1 = 0;
  bool found_w0 = false, found_w1 = false;
  for (cpg::NodeId n = 0; n < rig.manifest.node_shard.size(); ++n) {
    if (rig.worker_of(n) == 0 && !found_w0) { on_w0 = n; found_w0 = true; }
    if (rig.worker_of(n) == 1 && !found_w1) { on_w1 = n; found_w1 = true; }
  }
  ASSERT_TRUE(found_w0 && found_w1);

  net::RouterService router(rig.manifest, rig.endpoints);
  auto server = net::uds::Server::listen(socket_path("net_router_kill.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop front(std::move(server).value(), router);
  front.start();

  rig.loops[0]->abort();  // worker 0 "crashes" before serving anything

  auto client = net::QueryClient::connect(front.path());
  ASSERT_TRUE(client.ok()) << client.status().message();
  const std::string q0 = "{\"id\":1,\"op\":\"backward_slice\",\"node\":" +
                         std::to_string(on_w0) + "}";
  const std::string q1 = "{\"id\":2,\"op\":\"backward_slice\",\"node\":" +
                         std::to_string(on_w1) + "}";
  const auto r0 = (*client)->call(q0);
  ASSERT_TRUE(r0.ok()) << r0.status().message();
  EXPECT_NE(r0->find("\"status\":\"unavailable\""), std::string::npos) << *r0;
  EXPECT_NE(r0->find("worker 0"), std::string::npos) << *r0;
  const auto r1 = (*client)->call(q1);
  ASSERT_TRUE(r1.ok()) << r1.status().message();
  EXPECT_EQ(*r1, reference_replies(rig.graph, {q1})[0]);
  ASSERT_TRUE((*client)->goodbye().ok());
  front.stop();
}

TEST(NetServe, KillMidSessionInvalidatesTheWorkersCursors) {
  RouterRig rig = make_rig("net_router_cursor", 7, 2);

  net::RouterService router(rig.manifest, rig.endpoints);
  auto server = net::uds::Server::listen(socket_path("net_router_cur.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop front(std::move(server).value(), router);
  front.start();

  auto client = net::QueryClient::connect(front.path());
  ASSERT_TRUE(client.ok()) << client.status().message();

  // Walk worker-0 nodes until a page-1 slice actually paginates, so a
  // live cursor exists inside worker 0. Replies stay reference-equal
  // along the way (including the virtualized cursor ids).
  std::vector<std::string> issued;
  std::string cursor;
  for (cpg::NodeId n = 0;
       n < rig.manifest.node_shard.size() && cursor.empty(); ++n) {
    if (rig.worker_of(n) != 0) continue;
    issued.push_back("{\"id\":" + std::to_string(issued.size() + 1) +
                     ",\"op\":\"forward_slice\",\"node\":" +
                     std::to_string(n) + ",\"page_size\":1}");
    const auto reply = (*client)->call(issued.back());
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_EQ(*reply, reference_replies(rig.graph, issued).back());
    const std::string_view marker = "\"has_more\":true,\"cursor\":";
    const auto at = reply->find(marker);
    if (at == std::string::npos) continue;
    for (std::size_t i = at + marker.size(); i < reply->size() &&
                                  std::isdigit(static_cast<unsigned char>(
                                      (*reply)[i]));
         ++i) {
      cursor.push_back((*reply)[i]);
    }
  }
  ASSERT_FALSE(cursor.empty()) << "no worker-0 slice paginated";

  // The paginated result lives in worker 0; killing it mid-session
  // must turn "next" into a typed error, not a hang or a wrong page.
  rig.loops[0]->abort();
  const auto next = (*client)->call(
      R"({"id":99,"op":"next","cursor":)" + cursor + "}");
  ASSERT_TRUE(next.ok()) << next.status().message();
  EXPECT_NE(next->find("\"status\":\"unavailable\""), std::string::npos)
      << *next;
  ASSERT_TRUE((*client)->goodbye().ok());
  front.stop();
}

TEST(NetServe, DeadWorkerFailsOverWhenDegraded) {
  RouterRig rig = make_rig("net_router_deg", 7, 2);
  const auto lines = request_lines();
  const auto expected = reference_replies(rig.graph, lines);

  net::RouterService router(rig.manifest, rig.endpoints,
                            {.allow_degraded = true});
  auto server = net::uds::Server::listen(socket_path("net_router_deg.sock"));
  ASSERT_TRUE(server.ok()) << server.status().message();
  net::ServeLoop front(std::move(server).value(), router);
  front.start();

  rig.loops[0]->abort();

  // Every worker opens the full store, so failover re-runs each of the
  // dead worker's queries on the survivor -- and because replies are
  // complete-or-nothing, the output is still byte-identical.
  EXPECT_EQ(replay(front.path(), lines), expected);
  front.stop();
}

}  // namespace
