// Deterministic-replay tests: the CPG must be a sufficient record to
// re-execute the program and reproduce its final memory state (the
// state-machine-replication workflow of §I).
#include <gtest/gtest.h>

#include "core/inspector.h"
#include "replay/replay.h"
#include "workloads/common.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;
using workloads::global_word;
using workloads::mutex_id;
using workloads::ScriptBuilder;

class ReplayWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayWorkloadTest, ReproducesFinalState) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  const auto program = workloads::make_workload(GetParam(), config);
  core::Inspector insp;
  const auto result = insp.run(program);
  EXPECT_TRUE(replay::replay_matches(program, *result.graph,
                                     *result.memory))
      << GetParam();
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  for (const auto& e : workloads::all_workloads()) out.push_back(e.name);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, ReplayWorkloadTest,
                         ::testing::ValuesIn(names()),
                         [](const auto& info) { return info.param; });

TEST(Replay, CountsNodesAndThreads) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  const auto program = workloads::make_histogram(config);
  core::Inspector insp;
  const auto result = insp.run(program);
  const auto replayed = replay::replay_execution(program, *result.graph);
  EXPECT_EQ(replayed.nodes_replayed, result.graph->nodes().size());
  EXPECT_EQ(replayed.threads, result.stats.threads_spawned);
  EXPECT_GT(replayed.ops_executed, 0u);
}

TEST(Replay, LockOrderedValueIsReproduced) {
  // Two threads write the same word under a lock with *different*
  // values: the replay must reproduce whichever ordering the original
  // run took.
  runtime::Program p;
  p.name = "lock_order";
  const auto m = mutex_id(0);
  for (int w = 0; w < 2; ++w) {
    ScriptBuilder b(w + 1);
    b.compute(w == 0 ? 500 : 400);
    b.lock(m);
    b.load(global_word(0));
    b.store(global_word(0), 100 + static_cast<std::uint64_t>(w));
    b.unlock(m);
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  main.spawn(0).spawn(1).join(0).join(1);
  p.main_script = 2;
  p.scripts.push_back(main.take());

  core::Inspector insp;
  const auto result = insp.run(p);
  const auto replayed = replay::replay_execution(p, *result.graph);
  EXPECT_EQ(replayed.memory->read_word(global_word(0)),
            result.memory->read_word(global_word(0)));
}

TEST(Replay, SnapshotPrefixReplaysPartially) {
  // A consistent snapshot of the CPG replays the committed prefix: the
  // live-analysis workflow of §VI applied to replication.
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  const auto program = workloads::make_word_count(config);
  core::Options options;
  options.snapshot_every_syncs = 32;
  core::Inspector insp(options);
  const auto result = insp.run(program);
  ASSERT_NE(result.snapshots, nullptr);
  ASSERT_GT(result.snapshots->occupied(), 0u);

  auto snap = result.snapshots->consume();
  ASSERT_TRUE(snap.has_value());
  // A prefix cannot contain exit nodes for every thread, so full replay
  // of it uses the nodes that exist. It must not throw and must replay
  // exactly the snapshot's nodes.
  const auto replayed = replay::replay_execution(program, *snap);
  EXPECT_EQ(replayed.nodes_replayed, snap->nodes().size());
}

TEST(Replay, WrongProgramIsRejected) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.15;
  const auto histogram = workloads::make_histogram(config);
  const auto canneal = workloads::make_canneal(config);
  core::Inspector insp;
  const auto result = insp.run(histogram);
  EXPECT_THROW(
      (void)replay::replay_execution(canneal, *result.graph),
      replay::ReplayError)
      << "a CPG recorded from one program cannot drive another";
}

TEST(Replay, EmptyGraphReplaysNothing) {
  runtime::Program p;
  p.name = "empty";
  ScriptBuilder main(1);
  main.compute(10);
  p.main_script = 0;
  p.scripts.push_back(main.take());
  const auto replayed = replay::replay_execution(p, cpg::Graph{});
  EXPECT_EQ(replayed.nodes_replayed, 0u);
  EXPECT_EQ(replayed.ops_executed, 0u);
}

}  // namespace
