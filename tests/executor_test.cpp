// Executor tests: scheduling, blocking semantics end-to-end, native vs
// INSPECTOR equivalence, determinism, deadlock detection, stats.
#include <gtest/gtest.h>

#include "runtime/executor.h"
#include "workloads/common.h"

namespace {

using namespace inspector::runtime;
namespace sync = inspector::sync;
using inspector::workloads::global_word;
using inspector::workloads::mutex_id;
using inspector::workloads::ScriptBuilder;

ExecutorOptions native_opts() {
  ExecutorOptions o;
  o.mode = Mode::kNative;
  return o;
}
ExecutorOptions inspector_opts() {
  ExecutorOptions o;
  o.mode = Mode::kInspector;
  return o;
}

// One thread stores, spawns a child that increments, joins, reads.
Program parent_child_program() {
  Program p;
  p.name = "parent_child";
  ScriptBuilder child(1);
  child.load(global_word(0)).store(global_word(0), 11).compute(10);
  p.scripts.push_back(child.take());
  ScriptBuilder main(2);
  main.store(global_word(0), 1);
  main.spawn(0);
  main.join(0);
  main.load(global_word(0));
  main.store(global_word(1), 5);
  p.main_script = 1;
  p.scripts.push_back(main.take());
  return p;
}

TEST(Executor, RunsToCompletionNative) {
  const auto result = execute(parent_child_program(), native_opts());
  EXPECT_EQ(result.stats.threads_spawned, 2u);
  EXPECT_EQ(result.memory->read_word(global_word(0)), 11u);
  EXPECT_EQ(result.memory->read_word(global_word(1)), 5u);
  EXPECT_FALSE(result.graph.has_value());
  EXPECT_GT(result.stats.sim_time_ns, 0u);
  EXPECT_GE(result.stats.work_ns, result.stats.sim_time_ns / 2);
}

TEST(Executor, InspectorProducesGraphAndSameState) {
  const auto result = execute(parent_child_program(), inspector_opts());
  ASSERT_TRUE(result.graph.has_value());
  std::string reason;
  EXPECT_TRUE(result.graph->validate(&reason)) << reason;
  EXPECT_EQ(result.memory->read_word(global_word(0)), 11u);
  EXPECT_EQ(result.memory->read_word(global_word(1)), 5u);
  EXPECT_GT(result.stats.page_faults, 0u);
  EXPECT_GT(result.stats.commits, 0u);
  EXPECT_GT(result.stats.pt_bytes, 0u);
}

TEST(Executor, ChildSeesParentWritesBeforeSpawn) {
  // RC guarantee through the create() release/acquire pair.
  Program p;
  p.name = "visibility";
  ScriptBuilder child(1);
  child.load(global_word(7));
  child.store(global_word(8), 1);
  p.scripts.push_back(child.take());
  ScriptBuilder main(2);
  main.store(global_word(7), 123);
  main.spawn(0);
  main.join(0);
  p.main_script = 1;
  p.scripts.push_back(main.take());

  const auto result = execute(p, inspector_opts());
  ASSERT_TRUE(result.graph.has_value());
  // The child's first node must read page of global 7 and be ordered
  // after the parent's pre-spawn node that wrote it.
  const auto& g = *result.graph;
  const auto deps = g.data_dependencies(*g.find(1, 0));
  bool saw_parent_write = false;
  for (const auto& e : deps) {
    if (g.node(e.from).thread == 0) saw_parent_write = true;
  }
  EXPECT_TRUE(saw_parent_write);
}

TEST(Executor, MutexOrdersCriticalSections) {
  // Two children increment the same word under a mutex; final value
  // must reflect both (no lost update), in both modes.
  Program p;
  p.name = "mutex_order";
  for (int w = 0; w < 2; ++w) {
    ScriptBuilder b(w + 1);
    b.lock(mutex_id(0));
    b.load(global_word(0));
    b.store(global_word(w + 1), 100 + w);  // distinct marker words
    b.store(global_word(0), 7 + w);        // same word: lock-ordered
    b.unlock(mutex_id(0));
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  main.spawn(0).spawn(1);
  main.join(0).join(1);
  p.main_script = 2;
  p.scripts.push_back(main.take());

  const auto native = execute(p, native_opts());
  const auto traced = execute(p, inspector_opts());
  EXPECT_EQ(native.memory->read_word(global_word(0)),
            traced.memory->read_word(global_word(0)))
      << "lock-ordered same-word writes must agree across modes";
  EXPECT_EQ(traced.memory->read_word(global_word(1)), 100u);
  EXPECT_EQ(traced.memory->read_word(global_word(2)), 101u);
}

TEST(Executor, BarrierSynchronizesRounds) {
  Program p;
  p.name = "barrier_rounds";
  const auto bar = inspector::workloads::barrier_id(0);
  p.barriers.push_back({bar, 2});
  for (int w = 0; w < 2; ++w) {
    ScriptBuilder b(w + 1);
    b.store(global_word(10 + w), 1);
    b.barrier_wait(bar);
    b.load(global_word(10 + (1 - w)));  // read the peer's pre-barrier write
    b.store(global_word(20 + w), 2);
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  main.spawn(0).spawn(1).join(0).join(1);
  p.main_script = 2;
  p.scripts.push_back(main.take());

  const auto result = execute(p, inspector_opts());
  ASSERT_TRUE(result.graph.has_value());
  const auto& g = *result.graph;
  // Each worker's post-barrier read must depend on the peer's
  // pre-barrier write.
  const auto deps = g.data_dependencies(*g.find(2, 1));
  bool cross = false;
  for (const auto& e : deps) {
    if (g.node(e.from).thread == 1) cross = true;
  }
  EXPECT_TRUE(cross) << "barrier all-to-all dataflow missing";
}

TEST(Executor, SemaphoreProducerConsumer) {
  Program p;
  p.name = "semaphore";
  const auto sem = inspector::workloads::sem_id(0);
  p.semaphores.push_back({sem, 0});
  ScriptBuilder producer(1);
  producer.store(global_word(0), 42);
  producer.sem_post(sem);
  p.scripts.push_back(producer.take());
  ScriptBuilder consumer(2);
  consumer.sem_wait(sem);
  consumer.load(global_word(0));
  consumer.store(global_word(1), 43);
  p.scripts.push_back(consumer.take());
  ScriptBuilder main(3);
  main.spawn(1).spawn(0).join(0).join(1);  // consumer first: must block
  p.main_script = 2;
  p.scripts.push_back(main.take());

  const auto result = execute(p, inspector_opts());
  EXPECT_EQ(result.memory->read_word(global_word(1)), 43u);
  const auto& g = *result.graph;
  // The consumer's post-wait read depends on the producer's write.
  bool ordered = false;
  for (const auto& e : g.edges()) {
    if (e.kind == inspector::cpg::EdgeKind::kSync &&
        sync::object_kind(e.object) == sync::ObjectKind::kSemaphore) {
      ordered = true;
    }
  }
  EXPECT_TRUE(ordered);
}

TEST(Executor, CondVarWakeup) {
  Program p;
  p.name = "condvar";
  const auto m = mutex_id(0);
  const auto cv = inspector::workloads::cond_id(0);
  ScriptBuilder waiter(1);
  waiter.lock(m);
  waiter.cond_wait(cv, m);
  waiter.load(global_word(0));
  waiter.store(global_word(1), 9);
  waiter.unlock(m);
  p.scripts.push_back(waiter.take());
  ScriptBuilder signaler(2);
  signaler.compute(5000);  // let the waiter block first
  signaler.lock(m);
  signaler.store(global_word(0), 8);
  signaler.unlock(m);
  signaler.cond_signal(cv);
  p.scripts.push_back(signaler.take());
  ScriptBuilder main(3);
  main.spawn(0).spawn(1).join(0).join(1);
  p.main_script = 2;
  p.scripts.push_back(main.take());

  for (const auto& opts : {native_opts(), inspector_opts()}) {
    const auto result = execute(p, opts);
    EXPECT_EQ(result.memory->read_word(global_word(1)), 9u);
  }
}

TEST(Executor, DeadlockIsDetected) {
  Program p;
  p.name = "deadlock";
  const auto sem = inspector::workloads::sem_id(0);
  p.semaphores.push_back({sem, 0});
  ScriptBuilder main(1);
  main.sem_wait(sem);  // nobody ever posts
  p.main_script = 0;
  p.scripts.push_back(main.take());
  EXPECT_THROW((void)execute(p, native_opts()), std::runtime_error);
}

TEST(Executor, SyncErrorsPropagate) {
  Program p;
  p.name = "bad_unlock";
  ScriptBuilder main(1);
  main.unlock(mutex_id(0));  // never locked
  p.main_script = 0;
  p.scripts.push_back(main.take());
  EXPECT_THROW((void)execute(p, native_opts()), sync::SyncError);
}

TEST(Executor, SpawnUnknownScriptThrows) {
  Program p;
  p.name = "bad_spawn";
  ScriptBuilder main(1);
  main.spawn(5);
  p.main_script = 0;
  p.scripts.push_back(main.take());
  EXPECT_THROW((void)execute(p, native_opts()), std::logic_error);
}

TEST(Executor, DeterministicAcrossRuns) {
  const Program p = parent_child_program();
  const auto a = execute(p, inspector_opts());
  const auto b = execute(p, inspector_opts());
  EXPECT_EQ(a.stats.sim_time_ns, b.stats.sim_time_ns);
  EXPECT_EQ(a.stats.page_faults, b.stats.page_faults);
  EXPECT_EQ(a.stats.pt_bytes, b.stats.pt_bytes);
  EXPECT_EQ(a.graph->nodes().size(), b.graph->nodes().size());
  EXPECT_EQ(a.graph->edges(), b.graph->edges());
}

TEST(Executor, ScheduleSeedPerturbsButStaysValid) {
  Program p;
  p.name = "seeded";
  for (int w = 0; w < 3; ++w) {
    ScriptBuilder b(w + 1);
    for (int i = 0; i < 5; ++i) {
      b.lock(mutex_id(0));
      b.load(global_word(0));
      b.store(global_word(0), static_cast<std::uint64_t>(w * 10 + i));
      b.unlock(mutex_id(0));
      b.compute(50);
    }
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  main.spawn(0).spawn(1).spawn(2).join(0).join(1).join(2);
  p.main_script = 3;
  p.scripts.push_back(main.take());

  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    auto opts = inspector_opts();
    opts.schedule_seed = seed;
    const auto result = execute(p, opts);
    std::string reason;
    EXPECT_TRUE(result.graph->validate(&reason))
        << "seed " << seed << ": " << reason;
  }
}

TEST(Executor, AblationPtOffMemtrackOn) {
  auto opts = inspector_opts();
  opts.enable_pt = false;
  const auto result = execute(parent_child_program(), opts);
  EXPECT_EQ(result.stats.pt_bytes, 0u);
  EXPECT_GT(result.stats.page_faults, 0u);
  ASSERT_TRUE(result.graph.has_value());
  EXPECT_EQ(result.graph->stats().thunks, 0u) << "no PT -> no thunks";
  EXPECT_GT(result.graph->stats().nodes, 0u);
}

TEST(Executor, AblationMemtrackOffPtOn) {
  auto opts = inspector_opts();
  opts.enable_memtrack = false;
  const auto result = execute(parent_child_program(), opts);
  EXPECT_EQ(result.stats.page_faults, 0u);
  EXPECT_GT(result.stats.pt_bytes, 0u);
  ASSERT_TRUE(result.graph.has_value());
  const auto s = result.graph->stats();
  EXPECT_EQ(s.read_pages + s.write_pages, 0u) << "no memtrack -> no R/W sets";
  EXPECT_GT(s.thunks, 0u);
}

TEST(Executor, WorkExceedsTimeWithParallelism) {
  // With 4 parallel workers, total work must exceed end-to-end time.
  Program p;
  p.name = "parallel_work";
  for (int w = 0; w < 4; ++w) {
    ScriptBuilder b(w + 1);
    b.compute(100000);
    p.scripts.push_back(b.take());
  }
  ScriptBuilder main(9);
  for (std::uint64_t w = 0; w < 4; ++w) main.spawn(w);
  for (std::uint64_t w = 0; w < 4; ++w) main.join(w);
  p.main_script = 4;
  p.scripts.push_back(main.take());
  const auto result = execute(p, native_opts());
  EXPECT_GT(result.stats.work_ns, result.stats.sim_time_ns * 3)
      << "4 threads of equal work should give ~4x work/time";
}

TEST(Executor, PerfSessionRecordsLifecycle) {
  const auto result = execute(parent_child_program(), inspector_opts());
  ASSERT_NE(result.perf_session, nullptr);
  bool fork = false, exit_rec = false, itrace = false;
  for (const auto& r : result.perf_session->records()) {
    if (r.type == inspector::perf::RecordType::kFork) fork = true;
    if (r.type == inspector::perf::RecordType::kExit) exit_rec = true;
    if (r.type == inspector::perf::RecordType::kItraceStart) itrace = true;
  }
  EXPECT_TRUE(fork);
  EXPECT_TRUE(exit_rec);
  EXPECT_TRUE(itrace);
  EXPECT_EQ(result.perf_session->traced_pids().size(), 2u)
      << "child joined the cgroup via fork inheritance";
}

}  // namespace
