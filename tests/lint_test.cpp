// inspector_lint internals: the lexer's comment/string/preprocessor
// handling (the property that separates token-pattern linting from
// regex-over-text), function-extent extraction, each rule family on
// inline sources, the suppression annotations, unified-diff parsing,
// and the baseline machinery via run_tree over a temp tree. The
// checked-in fixture corpus (tests/data/lint, ctest `lint_fixtures`)
// covers the end-to-end rule behavior; these tests pin the pieces.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/driver.h"
#include "lint/lexer.h"
#include "lint/rules.h"

namespace {

using namespace inspector::lint;

std::vector<Finding> lint(const std::string& path, const std::string& src) {
  const LexedFile lexed = lex(path, src);
  return apply_suppressions(lexed, run_rules(lexed));
}

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

// --- lexer -----------------------------------------------------------

TEST(LintLexer, SeparatesCommentsFromTokens) {
  const LexedFile f = lex("x.cpp",
                          "int a = 1;  // trailing note\n"
                          "// whole-line note\n"
                          "int b = 2;\n");
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].text, "trailing note");
  EXPECT_TRUE(f.comments[0].trailing);
  EXPECT_EQ(f.comments[0].line, 1u);
  EXPECT_EQ(f.comments[1].text, "whole-line note");
  EXPECT_FALSE(f.comments[1].trailing);
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text.find("note"), 0u);
  }
}

TEST(LintLexer, StringsAndCharsAreOpaque) {
  const LexedFile f = lex("x.cpp",
                          "const char* s = \"throw ::open(\";\n"
                          "char q = '\\'';\n");
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "throw");
      EXPECT_NE(t.text, "open");
    }
  }
  const auto str = std::find_if(f.tokens.begin(), f.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kString;
                                });
  ASSERT_NE(str, f.tokens.end());
  EXPECT_EQ(str->text, "\"throw ::open(\"");
}

TEST(LintLexer, RawStringsWithDelimiters) {
  const LexedFile f = lex("x.cpp",
                          "auto s = R\"delim(contains )\" and ::fsync(fd) "
                          "and\nnewlines)delim\";\nint after = 3;\n");
  bool saw_fsync = false;
  bool saw_after = false;
  for (const Token& t : f.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    saw_fsync = saw_fsync || t.text == "fsync";
    if (t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 3u);  // the raw string spanned lines 1-2
    }
  }
  EXPECT_FALSE(saw_fsync);
  EXPECT_TRUE(saw_after);
}

TEST(LintLexer, PreprocessorLinesAreOneOpaqueToken) {
  const LexedFile f = lex("x.cpp",
                          "#define WRAP(x) \\\n  ::open(x)\n"
                          "int y = 0;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].kind, TokKind::kPreprocessor);
  // The continuation folded into the directive; `open` never tokenizes.
  for (const Token& t : f.tokens) {
    if (t.kind == TokKind::kIdent) EXPECT_NE(t.text, "open");
  }
}

TEST(LintLexer, DigitSeparatorsStayOneNumber) {
  const LexedFile f = lex("x.cpp", "long n = 1'000'000;\n");
  const auto num = std::find_if(f.tokens.begin(), f.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kNumber;
                                });
  ASSERT_NE(num, f.tokens.end());
  EXPECT_EQ(num->text, "1'000'000");
}

TEST(LintLexer, DocCommentExamplesKeepTheirSlashes) {
  // `/// // lint: ...` must not strip down to a live annotation.
  const LexedFile f = lex("x.cpp", "/// // lint: allow(x) example\nint a;\n");
  ASSERT_EQ(f.comments.size(), 1u);
  EXPECT_EQ(f.comments[0].text.substr(0, 2), "//");
}

// --- function extents ------------------------------------------------

TEST(LintExtents, QualifiedNamesAndBodies) {
  const LexedFile f = lex("x.cpp",
                          "void Dispatcher::write_loop(int n) {\n"
                          "  run(n);\n"
                          "}\n"
                          "int free_fn();\n"  // declaration: no extent
                          "int other() { return 2; }\n");
  const auto extents = function_extents(f);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].name, "Dispatcher::write_loop");
  EXPECT_EQ(extents[0].begin_line, 1u);
  EXPECT_EQ(extents[0].end_line, 3u);
  EXPECT_EQ(extents[1].name, "other");
}

TEST(LintExtents, ConstructorInitializerList) {
  const LexedFile f = lex("x.cpp",
                          "Worker::Worker(int n)\n"
                          "    : count_(n), name_{\"w\"} {\n"
                          "  start();\n"
                          "}\n");
  const auto extents = function_extents(f);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].name, "Worker::Worker");
  EXPECT_EQ(extents[0].end_line, 4u);
}

// --- rules on inline sources ----------------------------------------

TEST(LintRules, ThrowOnlyInsideBoundaryDirs) {
  const std::string src = "void f(){ throw 1; }\n";
  EXPECT_EQ(rules_of(lint("src/query/x.cpp", src)),
            std::vector<std::string>{std::string(kRuleNoThrow)});
  EXPECT_TRUE(lint("src/cpg/x.cpp", src).empty());
}

TEST(LintRules, ReturnGlobalQualifiedCallIsStillRaw) {
  const auto findings = lint("src/shard/x.cpp",
                             "int f(const char* p){ return ::open(p, 0); }\n");
  EXPECT_EQ(rules_of(findings),
            std::vector<std::string>{std::string(kRuleFailpointSeam)});
}

TEST(LintRules, MethodNamedOpenIsNotASyscall) {
  EXPECT_TRUE(lint("src/shard/x.cpp",
                   "void f(Store& s, const char* p){ s.open(p); "
                   "Store::open(p); }\n")
                  .empty());
}

TEST(LintRules, ChronoSystemClockIsWallClock) {
  const auto findings =
      lint("src/query/x.cpp",
           "auto f(){ return std::chrono::system_clock::now(); }\n");
  EXPECT_EQ(rules_of(findings),
            std::vector<std::string>{std::string(kRuleDeterminism)});
  EXPECT_TRUE(lint("src/query/x.cpp",
                   "auto f(){ return std::chrono::steady_clock::now(); }\n")
                  .empty());
}

TEST(LintRules, UnorderedIterationNeedsDeclaredName) {
  const std::string src =
      "int f(){ std::unordered_map<int,int> m;\n"
      "int t = 0; for (const auto& kv : m) t += kv.second; return t; }\n";
  const auto findings = lint("src/query/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleDeterminism);
  EXPECT_EQ(findings[0].line, 2u);
  // A std::map with the same shape is fine.
  EXPECT_TRUE(lint("src/query/x.cpp",
                   "int f(){ std::map<int,int> m;\n"
                   "int t = 0; for (const auto& kv : m) t += kv.second; "
                   "return t; }\n")
                  .empty());
}

TEST(LintRules, EmissionOnlyFlaggedInFinalizerPhase) {
  const std::string in_loop =
      "void Dispatcher::write_loop(){ span->finish(); }\n";
  const std::string outside = "void Dispatcher::teardown(){ span->finish(); }\n";
  EXPECT_EQ(rules_of(lint("src/net/x.cpp", in_loop)),
            std::vector<std::string>{std::string(kRuleFinalizerPurity)});
  EXPECT_TRUE(lint("src/net/x.cpp", outside).empty());
  // Outside src/net/ + src/query/ the finalizer scan does not apply.
  EXPECT_TRUE(lint("src/shard/x.cpp", in_loop).empty());
}

// --- suppressions ----------------------------------------------------

TEST(LintSuppress, TrailingAndWholeLineAllow) {
  EXPECT_TRUE(lint("src/query/x.cpp",
                   "void f(){ throw 1; }  "
                   "// lint: allow(no-throw-across-boundary) documented\n")
                  .empty());
  EXPECT_TRUE(lint("src/query/x.cpp",
                   "// lint: allow(no-throw-across-boundary) documented\n"
                   "void f(){ throw 1; }\n")
                  .empty());
}

TEST(LintSuppress, AllowOnWrongLineDoesNotSuppress) {
  const auto findings =
      lint("src/query/x.cpp",
           "// lint: allow(no-throw-across-boundary) too far away\n"
           "int unrelated = 0;\n"
           "void f(){ throw 1; }\n");
  EXPECT_EQ(rules_of(findings),
            std::vector<std::string>{std::string(kRuleNoThrow)});
}

TEST(LintSuppress, MissingJustificationIsAFinding) {
  const auto findings = lint(
      "src/query/x.cpp",
      "void f(){ throw 1; }  // lint: allow(no-throw-across-boundary)\n");
  auto rules = rules_of(findings);
  std::sort(rules.begin(), rules.end());
  EXPECT_EQ(rules, (std::vector<std::string>{std::string(kRuleAnnotation),
                                             std::string(kRuleNoThrow)}));
}

TEST(LintSuppress, UnknownRuleIsAFinding) {
  const auto findings =
      lint("src/cpg/x.cpp", "int a = 0;  // lint: allow(no-such-rule) why\n");
  EXPECT_EQ(rules_of(findings),
            std::vector<std::string>{std::string(kRuleAnnotation)});
}

TEST(LintSuppress, AllowFileCoversOneRuleOnly) {
  const auto findings =
      lint("src/shard/x.cpp",
           "// lint: allow-file(failpoint-seam) designated seam helper\n"
           "int f(const char* p){ return ::open(p, 0); }\n"
           "void g(){ throw 1; }\n");
  EXPECT_EQ(rules_of(findings),
            std::vector<std::string>{std::string(kRuleNoThrow)});
}

// --- diff parsing and format-version-discipline ----------------------

TEST(LintDiff, AddedLinesCarryNewSideNumbers) {
  const auto diff = parse_unified_diff(
      "--- a/f.cpp\n"
      "+++ b/f.cpp\n"
      "@@ -10,3 +20,4 @@\n"
      " context\n"
      "+added one\n"
      " context\n"
      "+added two\n");
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].path, "f.cpp");
  ASSERT_EQ(diff[0].added.size(), 2u);
  EXPECT_EQ(diff[0].added[0].line, 21u);
  EXPECT_EQ(diff[0].added[0].text, "added one");
  EXPECT_EQ(diff[0].added[1].line, 23u);
  EXPECT_TRUE(diff[0].removal_positions.empty());
}

TEST(LintDiff, RemovalOnlyHunkRecordsPosition) {
  const auto diff = parse_unified_diff(
      "--- a/f.cpp\n"
      "+++ b/f.cpp\n"
      "@@ -5,1 +4,0 @@\n"
      "-gone\n");
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_TRUE(diff[0].added.empty());
  ASSERT_EQ(diff[0].removal_positions.size(), 1u);
  EXPECT_EQ(diff[0].removal_positions[0], 4u);
}

TEST(LintDiff, VersionBumpAnywhereInDiffSatisfiesTheRule) {
  const LexedFile pretend =
      lex("src/cpg/serialize.cpp",
          "int x;\n"
          "std::vector<int> serialize_graph(int n) {\n"
          "  return {n};\n"
          "}\n");
  auto lookup = [&](const std::string& p) -> const LexedFile* {
    return p == pretend.path ? &pretend : nullptr;
  };
  const std::string touch_serialize =
      "--- a/src/cpg/serialize.cpp\n"
      "+++ b/src/cpg/serialize.cpp\n"
      "@@ -2,2 +2,3 @@\n"
      " std::vector<int> serialize_graph(int n) {\n"
      "+  n += 1;\n"
      "   return {n};\n";
  const auto bad = check_format_version(parse_unified_diff(touch_serialize),
                                        lookup);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rule, kRuleFormatVersion);
  EXPECT_EQ(bad[0].line, 3u);

  const std::string with_bump = touch_serialize +
      "--- a/src/cpg/serialize.h\n"
      "+++ b/src/cpg/serialize.h\n"
      "@@ -1,1 +1,1 @@\n"
      "-constexpr int kCpgFormatVersion = 1;\n"
      "+constexpr int kCpgFormatVersion = 2;\n";
  EXPECT_TRUE(
      check_format_version(parse_unified_diff(with_bump), lookup).empty());
}

// --- baseline machinery via run_tree ---------------------------------

class LintTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("lint_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_ / "src" / "query");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel, std::ios::trunc);
    out << content;
  }

  std::filesystem::path root_;
};

TEST_F(LintTreeTest, FindingsAndKeysStayAligned) {
  write("src/query/a.cpp", "void f(){ throw 1; }\n");
  RunOptions options;
  options.repo_root = root_.string();
  const RunResult result = run_tree(options);
  ASSERT_EQ(result.findings.size(), 1u);
  ASSERT_EQ(result.finding_keys.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, kRuleNoThrow);
  EXPECT_EQ(result.finding_keys[0],
            std::string(kRuleNoThrow) +
                "\tsrc/query/a.cpp\tvoid f(){ throw 1; }");
}

TEST_F(LintTreeTest, BaselineAbsorbsAndReportsStale) {
  write("src/query/a.cpp", "void f(){ throw 1; }\n");
  write("baseline.txt",
        "# residue, keyed by rule<TAB>path<TAB>normalized line\n" +
            std::string(kRuleNoThrow) +
            "\tsrc/query/a.cpp\tvoid f(){ throw 1; }\n" +
            std::string(kRuleNoThrow) + "\tsrc/query/gone.cpp\tthrow 2;\n");
  RunOptions options;
  options.repo_root = root_.string();
  options.baseline_path = (root_ / "baseline.txt").string();
  const RunResult result = run_tree(options);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.baselined, 1u);
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_NE(result.stale_baseline[0].find("gone.cpp"), std::string::npos);
}

TEST_F(LintTreeTest, BaselineSurvivesReindentation) {
  // The key normalizes whitespace, so a reindent does not invalidate it.
  write("src/query/a.cpp", "void f(){\n      throw 1;\n}\n");
  write("baseline.txt",
        std::string(kRuleNoThrow) + "\tsrc/query/a.cpp\tthrow 1;\n");
  RunOptions options;
  options.repo_root = root_.string();
  options.baseline_path = (root_ / "baseline.txt").string();
  const RunResult result = run_tree(options);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.baselined, 1u);
  EXPECT_TRUE(result.stale_baseline.empty());
}

TEST(LintNormalize, CollapsesWhitespace) {
  EXPECT_EQ(normalize_line("  a \t b  "), "a b");
  EXPECT_EQ(normalize_line("\t"), "");
}

}  // namespace
