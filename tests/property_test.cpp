// Property tests: deep invariants of the full pipeline, swept over
// (workload x schedule seed). These are the guarantees every provenance
// consumer relies on, checked on real executions rather than synthetic
// graphs.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/incremental.h"
#include "core/inspector.h"
#include "replay/replay.h"
#include "snapshot/consistent_cut.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;

using Param = std::tuple<std::string, std::uint64_t>;  // workload, seed

class PipelineProperty : public ::testing::TestWithParam<Param> {
 protected:
  runtime::ExecutionResult run() {
    const auto& [name, seed] = GetParam();
    workloads::WorkloadConfig config;
    config.threads = 4;
    config.scale = 0.12;
    core::Options options;
    options.schedule_seed = seed;
    core::Inspector insp(options);
    program_ = workloads::make_workload(name, config);
    return insp.run(program_);
  }

  runtime::Program program_;
};

TEST_P(PipelineProperty, CpgValidatesUnderEverySchedule) {
  const auto result = run();
  std::string reason;
  EXPECT_TRUE(result.graph->validate(&reason)) << reason;
}

TEST_P(PipelineProperty, AlphasAreContiguousPerThread) {
  const auto result = run();
  const auto& g = *result.graph;
  for (std::size_t t = 0; t < g.thread_count(); ++t) {
    const auto nodes = g.thread_nodes(static_cast<cpg::ThreadId>(t));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(g.node(nodes[i]).alpha, i)
          << "thread " << t << " position " << i;
    }
    // Every thread's last node is its exit.
    if (!nodes.empty()) {
      EXPECT_EQ(static_cast<int>(g.node(nodes.back()).end.kind),
                static_cast<int>(sync::SyncEventKind::kThreadExit));
    }
  }
}

TEST_P(PipelineProperty, ThunkBetasAreContiguous) {
  const auto result = run();
  for (const auto& node : result.graph->nodes()) {
    for (std::size_t b = 0; b < node.thunks.size(); ++b) {
      EXPECT_EQ(node.thunks[b].beta, b);
    }
  }
}

TEST_P(PipelineProperty, ControlEdgeCountIsNodesMinusThreads) {
  const auto result = run();
  const auto stats = result.graph->stats();
  EXPECT_EQ(stats.control_edges, stats.nodes - stats.threads);
}

TEST_P(PipelineProperty, ClocksGrowMonotonicallyPerThread) {
  const auto result = run();
  const auto& g = *result.graph;
  for (std::size_t t = 0; t < g.thread_count(); ++t) {
    const auto nodes = g.thread_nodes(static_cast<cpg::ThreadId>(t));
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      EXPECT_TRUE(
          g.node(nodes[i - 1]).clock.happens_before(g.node(nodes[i]).clock))
          << "thread " << t << " alpha " << i;
    }
  }
}

TEST_P(PipelineProperty, ScheduleSequenceIsStrictlyIncreasing) {
  const auto result = run();
  const auto& schedule = result.graph->schedule();
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LT(schedule[i - 1].seq, schedule[i].seq);
  }
}

TEST_P(PipelineProperty, EveryPrefixCutIsConsistent) {
  const auto result = run();
  const auto& schedule = result.graph->schedule();
  // Sample prefixes across the schedule.
  for (std::size_t i = 0; i < schedule.size(); i += schedule.size() / 7 + 1) {
    EXPECT_TRUE(snapshot::is_consistent(schedule,
                                        snapshot::Cut{schedule[i].seq}))
        << "cut at seq " << schedule[i].seq;
  }
}

TEST_P(PipelineProperty, PtRoundTripsUnderEverySchedule) {
  const auto result = run();
  const auto v = core::Inspector::verify_pt(result);
  EXPECT_TRUE(v.ok) << v.detail;
}

TEST_P(PipelineProperty, ReplayReproducesUnderEverySchedule) {
  const auto result = run();
  EXPECT_TRUE(replay::replay_matches(program_, *result.graph,
                                     *result.memory));
}

TEST_P(PipelineProperty, DataDependenciesRespectHappensBefore) {
  const auto result = run();
  const auto& g = *result.graph;
  // Sample a handful of nodes: every reported dependency must be
  // happens-before ordered and actually share the page.
  for (std::size_t i = 0; i < g.nodes().size(); i += g.nodes().size() / 5 + 1) {
    const auto id = static_cast<cpg::NodeId>(i);
    for (const auto& e : g.data_dependencies(id)) {
      EXPECT_TRUE(g.happens_before(e.from, id));
      EXPECT_TRUE(g.node(e.from).writes_page(e.object));
      EXPECT_TRUE(g.node(id).reads_page(e.object));
    }
    for (const auto& e : g.latest_writers(id)) {
      // A latest writer is a data dependency no other writer supersedes.
      for (const auto& other : g.data_dependencies(id)) {
        if (other.object == e.object) {
          EXPECT_FALSE(g.happens_before(e.from, other.from))
              << "latest writer superseded by another writer";
        }
      }
    }
  }
}

TEST_P(PipelineProperty, CommittedBytesNeverExceedWriteSetBytes) {
  const auto result = run();
  EXPECT_LE(result.stats.bytes_committed,
            result.stats.pages_committed * memtrack::kPageSize);
  EXPECT_LE(result.stats.write_faults, result.stats.page_faults);
}

std::vector<Param> sweep() {
  // Three representative workloads (scan-shaped, lock-heavy,
  // barrier-structured) x four seeds.
  std::vector<Param> params;
  for (const std::string name : {"histogram", "word_count", "streamcluster"}) {
    for (std::uint64_t seed : {0ull, 1ull, 7ull, 42ull}) {
      params.emplace_back(name, seed);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty, ::testing::ValuesIn(sweep()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
