// Offline store verification: fsck on clean stores, crash debris
// (detect + repair), every referenced-file damage class with its
// precise issue kind, v2-era manifests, and in-memory bit-flip sweeps
// over the manifest and one shard file per codec proving that no
// single-bit mutation of the on-disk formats can pass silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "history_fixtures.h"
#include "shard/format.h"
#include "shard/fsck.h"
#include "shard/planner.h"
#include "snapshot/compress.h"
#include "util/parallel.h"

namespace {

using namespace inspector;
using namespace inspector::shard;
namespace fixtures = inspector::fixtures;
namespace fs = std::filesystem;

using Kind = FsckIssue::Kind;

std::string make_store(const std::string& name, std::uint64_t seed,
                       ShardCodec codec = ShardCodec::kRaw) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  const cpg::Graph source = fixtures::random_history(seed);
  const auto written = write_store(source, dir, PlanOptions{3}, codec);
  EXPECT_TRUE(written.ok()) << written.status().message();
  return dir;
}

bool has_issue(const FsckReport& report, Kind kind,
               const std::string& file = "") {
  return std::any_of(report.issues.begin(), report.issues.end(),
                     [&](const FsckIssue& i) {
                       return i.kind == kind &&
                              (file.empty() || i.file == file);
                     });
}

TEST(Fsck, CleanStoreIsClean) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_clean", 50);
  const auto report = fsck(dir);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->clean());
  EXPECT_FALSE(report->damaged());
  EXPECT_EQ(report->shard_count, 3u);
  EXPECT_EQ(report->shards_verified, 3u);
}

TEST(Fsck, UnusableDirectoryIsAStatusNotAReport) {
  EXPECT_FALSE(fsck(::testing::TempDir() + "fsck_no_such_dir").ok());
  const std::string file = ::testing::TempDir() + "fsck_not_a_dir";
  std::ofstream(file) << "x";
  EXPECT_FALSE(fsck(file).ok());
}

TEST(Fsck, MissingManifestIsAnIssueInTheReport) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_no_manifest", 51);
  fs::remove(dir + "/" + kManifestFileName);
  const auto report = fsck(dir);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(has_issue(*report, Kind::kManifestUnreadable));
  EXPECT_TRUE(report->damaged());
}

TEST(Fsck, CrashDebrisIsDetectedAndRepaired) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_debris", 52);
  // Exactly what a crash between commit and sweep leaves: a stranded
  // manifest temp and an unreferenced generation-suffixed shard file.
  std::ofstream(dir + "/MANIFEST.bin.tmp") << "half-written";
  fs::copy(dir + "/shard-000.bin", dir + "/shard-000.g9.bin");

  const auto report = fsck(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_issue(*report, Kind::kStrandedTemp, "MANIFEST.bin.tmp"));
  EXPECT_TRUE(has_issue(*report, Kind::kOrphanShardFile, "shard-000.g9.bin"));
  EXPECT_TRUE(report->damaged()) << "unrepaired debris counts as damage";
  for (const FsckIssue& i : report->issues) {
    EXPECT_TRUE(i.repairable) << i.file;
    EXPECT_FALSE(i.repaired) << "a plain fsck must not delete " << i.file;
  }
  // A plain run touches nothing.
  EXPECT_TRUE(fs::exists(dir + "/MANIFEST.bin.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/shard-000.g9.bin"));

  const auto repaired = fsck(dir, FsckOptions{/*repair=*/true});
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->issues.size(), 2u);
  EXPECT_FALSE(repaired->damaged());
  for (const FsckIssue& i : repaired->issues) EXPECT_TRUE(i.repaired);
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST.bin.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/shard-000.g9.bin"));
  EXPECT_TRUE(fsck(dir)->clean());
}

TEST(Fsck, ReferencedFileDamageKindsAreNeverRepaired) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_damage", 53);
  auto manifest = ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());

  // shard 0: gone entirely. shard 1: truncated (wrong size). shard 2:
  // same-size byte flip (only the whole-file checksum can see it).
  const std::string f0 = dir + "/" + manifest->shards[0].file;
  const std::string f1 = dir + "/" + manifest->shards[1].file;
  const std::string f2 = dir + "/" + manifest->shards[2].file;
  fs::remove(f0);
  auto b1 = read_file_bytes(f1);
  ASSERT_TRUE(b1.ok());
  b1.value().resize(b1->size() - 7);
  ASSERT_TRUE(write_file_bytes(f1, *b1).ok());
  auto b2 = read_file_bytes(f2);
  ASSERT_TRUE(b2.ok());
  b2.value()[b2->size() / 2] ^= 0x01;
  ASSERT_TRUE(write_file_bytes(f2, *b2).ok());

  const auto report = fsck(dir, FsckOptions{/*repair=*/true});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(
      has_issue(*report, Kind::kMissingShardFile, manifest->shards[0].file));
  EXPECT_TRUE(
      has_issue(*report, Kind::kSizeMismatch, manifest->shards[1].file));
  EXPECT_TRUE(
      has_issue(*report, Kind::kChecksumMismatch, manifest->shards[2].file));
  EXPECT_EQ(report->shards_verified, 0u);
  EXPECT_TRUE(report->damaged()) << "referenced damage survives --repair";
  for (const FsckIssue& i : report->issues) {
    EXPECT_FALSE(i.repairable) << i.file;
    EXPECT_FALSE(i.repaired) << i.file;
  }
  // Repair must not have deleted the damaged-but-referenced files.
  EXPECT_TRUE(fs::exists(f1));
  EXPECT_TRUE(fs::exists(f2));
}

/// Recommit the store's manifest with `info` fields refreshed from the
/// bytes on disk, so fsck's size and checksum gates pass and the
/// deeper decode / cross-check stages run.
void recommit_with_fresh_checksums(const std::string& dir) {
  auto manifest = ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  for (ShardInfo& info : manifest.value().shards) {
    auto bytes = read_file_bytes(dir + "/" + info.file);
    ASSERT_TRUE(bytes.ok());
    info.byte_size = bytes->size();
    info.file_checksum = snapshot::fnv1a(*bytes);
  }
  ASSERT_TRUE(replace_file_bytes(dir + "/" + kManifestFileName,
                                 serialize_manifest(*manifest))
                  .ok());
}

TEST(Fsck, UndecodableShardBehindAValidChecksumIsCorrupt) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_corrupt", 54);
  auto manifest = ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  // Same-size garbage, then a manifest whose size + checksum match it:
  // only the decode stage can object now.
  const std::string file = dir + "/" + manifest->shards[1].file;
  auto bytes = read_file_bytes(file);
  ASSERT_TRUE(bytes.ok());
  std::fill(bytes.value().begin(), bytes.value().end(), std::uint8_t{0xEE});
  ASSERT_TRUE(write_file_bytes(file, *bytes).ok());
  recommit_with_fresh_checksums(dir);

  const auto report = fsck(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_issue(*report, Kind::kCorruptShard,
                        manifest->shards[1].file));
  EXPECT_TRUE(report->damaged());
  EXPECT_EQ(report->shards_verified, 2u);
}

TEST(Fsck, ForeignShardBehindAValidChecksumIsInconsistent) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  // The same history cut at a different shard count: its files decode
  // perfectly but disagree with this store's manifest about fences and
  // routing -- the cross-check's job.
  const std::string dir = make_store("fsck_foreign", 55);
  const std::string other = ::testing::TempDir() + "fsck_foreign_other";
  fs::remove_all(other);
  ASSERT_TRUE(
      write_store(fixtures::random_history(55), other, PlanOptions{2}).ok());
  fs::copy_file(other + "/shard-001.bin", dir + "/shard-001.bin",
                fs::copy_options::overwrite_existing);
  recommit_with_fresh_checksums(dir);

  const auto report = fsck(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_issue(*report, Kind::kInconsistentShard, "shard-001.bin"));
  EXPECT_TRUE(report->damaged());
}

TEST(Fsck, V2ManifestWithoutChecksumsStillVerifies) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_v2", 56);
  // A v2-era manifest has no per-file checksums (file_checksum == 0
  // means unknown) and no self-checksum; fsck still decodes and
  // cross-checks every shard.
  auto manifest = ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(replace_file_bytes(dir + "/" + kManifestFileName,
                                 serialize_manifest(*manifest, /*version=*/2))
                  .ok());
  const auto clean = fsck(dir);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  EXPECT_TRUE(clean->clean());
  EXPECT_EQ(clean->shards_verified, 3u);

  // Without the whole-file checksum a content flip must still be
  // caught -- by the shard's own decode-stage checksum or structure.
  const std::string file = dir + "/" + manifest->shards[0].file;
  auto bytes = read_file_bytes(file);
  ASSERT_TRUE(bytes.ok());
  bytes.value()[bytes->size() - 3] ^= 0x10;
  ASSERT_TRUE(write_file_bytes(file, *bytes).ok());
  const auto report = fsck(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->damaged());
}

TEST(Fsck, ManifestBitFlipSweepYieldsTypedErrors) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store("fsck_sweep_manifest", 57);
  const auto packed = read_file_bytes(dir + "/" + kManifestFileName);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(deserialize_manifest(*packed).ok());
  // The manifest carries a whole-file self-checksum, so *every* flip
  // must surface as a typed error: structurally (kInvalidArgument) or
  // through the checksum (kDataLoss). Nothing may parse silently.
  for (std::size_t bit = 0; bit < packed->size() * 8; ++bit) {
    auto corrupt = *packed;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto result = deserialize_manifest(corrupt);
    ASSERT_FALSE(result.ok()) << "bit " << bit << " flipped silently";
    EXPECT_TRUE(result.status().code() == StatusCode::kInvalidArgument ||
                result.status().code() == StatusCode::kDataLoss)
        << "bit " << bit << ": " << to_string(result.status().code());
  }
}

class FsckShardSweep : public ::testing::TestWithParam<ShardCodec> {};

TEST_P(FsckShardSweep, EveryBitFlipIsCaughtByDecodeOrManifestChecksum) {
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const std::string dir = make_store(
      GetParam() == ShardCodec::kLz ? "fsck_sweep_lz" : "fsck_sweep_raw", 58,
      GetParam());
  auto manifest = ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  const ShardInfo& info = manifest->shards[0];
  const auto packed = read_file_bytes(dir + "/" + info.file);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(deserialize_shard(*packed).ok());
  ASSERT_EQ(snapshot::fnv1a(*packed), info.file_checksum);

  // The raw codec's body has no internal checksum, so some flips
  // decode to a structurally valid shard -- the manifest's whole-file
  // checksum (v3) is the layer that closes that gap. The sweep demands
  // each flip is caught by at least one of the two.
  std::size_t caught_by_decode = 0;
  for (std::size_t bit = 0; bit < packed->size() * 8; ++bit) {
    auto corrupt = *packed;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const bool checksum_catches =
        snapshot::fnv1a(corrupt) != info.file_checksum;
    const auto decoded = deserialize_shard(corrupt);
    if (!decoded.ok()) {
      ++caught_by_decode;
      EXPECT_TRUE(
          decoded.status().code() == StatusCode::kInvalidArgument ||
          decoded.status().code() == StatusCode::kDataLoss)
          << "bit " << bit << ": " << to_string(decoded.status().code());
    }
    ASSERT_TRUE(!decoded.ok() || checksum_catches)
        << "bit " << bit << " passed both decode and the file checksum";
  }
  EXPECT_GT(caught_by_decode, 0u);
}

INSTANTIATE_TEST_SUITE_P(Codecs, FsckShardSweep,
                         ::testing::Values(ShardCodec::kRaw,
                                           ShardCodec::kLz));

}  // namespace
