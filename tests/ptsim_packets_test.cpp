// Intel PT packet encoder/decoder tests: wire-format details, IP
// compression, TNT packing, PSB sync, overflow, and malformed input.
#include <gtest/gtest.h>

#include <random>

#include "ptsim/decoder.h"
#include "ptsim/encoder.h"
#include "ptsim/sink.h"

namespace {

using namespace inspector::ptsim;

std::vector<Packet> filter(const std::vector<Packet>& packets,
                           PacketType type) {
  std::vector<Packet> out;
  for (const auto& p : packets) {
    if (p.type == type) out.push_back(p);
  }
  return out;
}

TEST(PtPackets, EnableEmitsPsbPlusAndPge) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x401000);
  PacketDecoder dec(sink.data());
  const auto packets = dec.decode_all();
  ASSERT_GE(packets.size(), 5u);
  EXPECT_EQ(packets[0].type, PacketType::kPsb);
  EXPECT_EQ(packets[1].type, PacketType::kCbr);
  EXPECT_EQ(packets[2].type, PacketType::kMode);
  EXPECT_EQ(packets[3].type, PacketType::kFup);
  EXPECT_EQ(packets[3].ip, 0x401000u);
  EXPECT_EQ(packets[4].type, PacketType::kPsbEnd);
  EXPECT_EQ(packets[5].type, PacketType::kTipPge);
  EXPECT_EQ(packets[5].ip, 0x401000u);
}

TEST(PtPackets, ShortTntRoundTrip) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  const bool pattern[] = {true, false, true, true, false, false};
  for (bool taken : pattern) enc.on_conditional(taken);
  // 6 bits force a short-TNT flush.
  PacketDecoder dec(sink.data());
  const auto tnts = filter(dec.decode_all(), PacketType::kTnt);
  ASSERT_EQ(tnts.size(), 1u);
  EXPECT_EQ(tnts[0].tnt.count, 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(tnts[0].tnt.taken(static_cast<std::uint8_t>(i)), pattern[i])
        << "bit " << i;
  }
}

TEST(PtPackets, PartialTntFlush) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_conditional(true);
  enc.on_conditional(false);
  enc.on_conditional(true);
  enc.flush();
  PacketDecoder dec(sink.data());
  const auto tnts = filter(dec.decode_all(), PacketType::kTnt);
  ASSERT_EQ(tnts.size(), 1u);
  EXPECT_EQ(tnts[0].tnt.count, 3);
  EXPECT_TRUE(tnts[0].tnt.taken(0));
  EXPECT_FALSE(tnts[0].tnt.taken(1));
  EXPECT_TRUE(tnts[0].tnt.taken(2));
}

TEST(PtPackets, LongTntRoundTrip) {
  VectorSink sink;
  EncoderOptions opts;
  opts.use_long_tnt = true;
  PacketEncoder enc(sink, opts);
  enc.on_enable(0x1000);
  std::mt19937_64 rng(7);
  std::vector<bool> pattern;
  for (int i = 0; i < 47; ++i) pattern.push_back((rng() & 1) != 0);
  for (bool taken : pattern) enc.on_conditional(taken);
  PacketDecoder dec(sink.data());
  const auto tnts = filter(dec.decode_all(), PacketType::kTnt);
  ASSERT_EQ(tnts.size(), 1u);
  ASSERT_EQ(tnts[0].tnt.count, 47);
  for (int i = 0; i < 47; ++i) {
    EXPECT_EQ(tnts[0].tnt.taken(static_cast<std::uint8_t>(i)), pattern[i])
        << "bit " << i;
  }
}

TEST(PtPackets, TipIpCompressionModes) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x0000700000401000ull);
  // Same upper 48 bits -> 2-byte update.
  enc.on_indirect(0x0000700000401abcull);
  // Same upper 32 bits -> 4-byte update.
  enc.on_indirect(0x0000700012345678ull);
  // Different upper bits, canonical -> 6-byte sign-extended.
  enc.on_indirect(0x0000000000401000ull);
  PacketDecoder dec(sink.data());
  const auto tips = filter(dec.decode_all(), PacketType::kTip);
  ASSERT_EQ(tips.size(), 3u);
  EXPECT_EQ(tips[0].ip, 0x0000700000401abcull);
  EXPECT_EQ(tips[0].ipc, IpCompression::kUpdate16);
  EXPECT_EQ(tips[1].ip, 0x0000700012345678ull);
  EXPECT_EQ(tips[1].ipc, IpCompression::kUpdate32);
  EXPECT_EQ(tips[2].ip, 0x0000000000401000ull);
}

TEST(PtPackets, NonCanonicalIpUsesFullBytes) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_indirect(0xDEAD00000040F000ull);  // upper bits non-canonical
  PacketDecoder dec(sink.data());
  const auto tips = filter(dec.decode_all(), PacketType::kTip);
  ASSERT_EQ(tips.size(), 1u);
  EXPECT_EQ(tips[0].ip, 0xDEAD00000040F000ull);
  EXPECT_EQ(tips[0].ipc, IpCompression::kFull);
}

TEST(PtPackets, DisableEmitsPgdWithSuppressedIp) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_conditional(true);
  enc.on_disable();
  PacketDecoder dec(sink.data());
  const auto packets = dec.decode_all();
  // The pending TNT bit must be flushed before the PGD.
  const auto pgds = filter(packets, PacketType::kTipPgd);
  ASSERT_EQ(pgds.size(), 1u);
  EXPECT_EQ(pgds[0].ipc, IpCompression::kSuppressed);
  const auto tnts = filter(packets, PacketType::kTnt);
  ASSERT_EQ(tnts.size(), 1u);
  EXPECT_EQ(tnts[0].tnt.count, 1);
}

TEST(PtPackets, OverflowDropsPendingTntAndResyncs) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_conditional(true);
  enc.on_conditional(true);
  enc.on_overflow(0x2000);
  PacketDecoder dec(sink.data());
  const auto packets = dec.decode_all();
  EXPECT_TRUE(filter(packets, PacketType::kTnt).empty())
      << "pending TNT bits must be lost on overflow";
  const auto ovfs = filter(packets, PacketType::kOvf);
  ASSERT_EQ(ovfs.size(), 1u);
  // The FUP after OVF carries the resume IP.
  bool seen_ovf = false;
  for (const auto& p : packets) {
    if (p.type == PacketType::kOvf) seen_ovf = true;
    if (seen_ovf && p.type == PacketType::kFup) {
      EXPECT_EQ(p.ip, 0x2000u);
      return;
    }
  }
  FAIL() << "no FUP after OVF";
}

TEST(PtPackets, PsbPeriodEmitsSyncPoints) {
  VectorSink sink;
  EncoderOptions opts;
  opts.psb_period_bytes = 64;
  PacketEncoder enc(sink, opts);
  enc.on_enable(0x1000);
  for (int i = 0; i < 4000; ++i) enc.on_conditional(i % 3 == 0);
  enc.flush();
  EXPECT_GT(enc.stats().psb_sequences, 4u);
  PacketDecoder dec(sink.data());
  const auto psbs = filter(dec.decode_all(), PacketType::kPsb);
  EXPECT_EQ(psbs.size(), enc.stats().psb_sequences);
}

TEST(PtPackets, SyncForwardFindsPsbMidStream) {
  VectorSink sink;
  EncoderOptions opts;
  opts.psb_period_bytes = 128;
  PacketEncoder enc(sink, opts);
  enc.on_enable(0x1000);
  for (int i = 0; i < 3000; ++i) enc.on_conditional(i % 2 == 0);
  enc.flush();
  // Chop the front mid-packet, as a snapshot-mode window would.
  std::vector<std::uint8_t> window(sink.data().begin() + 7,
                                   sink.data().end());
  PacketDecoder dec(window);
  ASSERT_TRUE(dec.sync_forward());
  EXPECT_GT(dec.stats().sync_skipped_bytes, 0u);
  // Decoding from the PSB must succeed to the end of the stream.
  const auto packets = dec.decode_all();
  EXPECT_FALSE(packets.empty());
  EXPECT_EQ(packets[0].type, PacketType::kPsb);
}

TEST(PtPackets, SyncForwardFailsWithoutPsb) {
  std::vector<std::uint8_t> junk = {0x04, 0x06, 0x08, 0x0A};  // short TNTs
  PacketDecoder dec(junk);
  EXPECT_FALSE(dec.sync_forward());
  EXPECT_TRUE(dec.at_end());
}

TEST(PtPackets, TruncatedTipThrows) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  enc.on_indirect(0xABCDEF0123ull);
  std::vector<std::uint8_t> cut(sink.data().begin(), sink.data().end() - 2);
  PacketDecoder dec(cut);
  EXPECT_THROW(
      {
        while (dec.next().has_value()) {
        }
      },
      DecodeError);
}

TEST(PtPackets, UnknownOpcodeThrowsWithOffset) {
  std::vector<std::uint8_t> bad = {0x00, 0x00, 0xD9};  // 0xD9: no such base
  PacketDecoder dec(bad);
  (void)dec.next();
  (void)dec.next();
  try {
    (void)dec.next();
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_EQ(e.offset(), 2u);
  }
}

TEST(PtPackets, PadIsSkippedCleanly) {
  std::vector<std::uint8_t> pads(16, 0x00);
  PacketDecoder dec(pads);
  const auto packets = dec.decode_all();
  EXPECT_EQ(packets.size(), 16u);
  for (const auto& p : packets) EXPECT_EQ(p.type, PacketType::kPad);
}

TEST(PtPackets, StatsCountBitsAndBytes) {
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x1000);
  for (int i = 0; i < 100; ++i) enc.on_conditional(true);
  enc.on_indirect(0x2000);
  enc.flush();
  EXPECT_EQ(enc.stats().tnt_bits, 100u);
  EXPECT_EQ(enc.stats().tip_packets, 1u);
  EXPECT_EQ(enc.stats().bytes, sink.data().size());
}

// Fuzz-style round trip: random branch streams must decode to the same
// TNT bit sequence and TIP targets.
class PtRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtRoundTripTest, RandomStreamRoundTrips) {
  std::mt19937_64 rng(GetParam());
  VectorSink sink;
  EncoderOptions opts;
  opts.psb_period_bytes = 256;
  opts.use_long_tnt = (GetParam() % 2) == 0;
  PacketEncoder enc(sink, opts);
  enc.on_enable(0x400000);

  std::vector<bool> bits;
  std::vector<std::uint64_t> targets;
  for (int i = 0; i < 5000; ++i) {
    if (rng() % 8 == 0) {
      const std::uint64_t target = 0x400000 + (rng() % 0x100000);
      targets.push_back(target);
      enc.on_indirect(target);
    } else {
      const bool taken = (rng() & 1) != 0;
      bits.push_back(taken);
      enc.on_conditional(taken);
    }
  }
  enc.on_disable();

  PacketDecoder dec(sink.data());
  std::vector<bool> got_bits;
  std::vector<std::uint64_t> got_targets;
  while (auto p = dec.next()) {
    if (p->type == PacketType::kTnt) {
      for (std::uint8_t i = 0; i < p->tnt.count; ++i) {
        got_bits.push_back(p->tnt.taken(i));
      }
    } else if (p->type == PacketType::kTip) {
      got_targets.push_back(p->ip);
    }
  }
  EXPECT_EQ(got_bits, bits);
  EXPECT_EQ(got_targets, targets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 101, 102, 103));

// Robustness fuzz: arbitrary bytes must either decode or throw
// DecodeError -- never hang, crash, or read out of bounds.
class PtFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtFuzzTest, ArbitraryBytesNeverCrash) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> junk(1 + rng() % 512);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    PacketDecoder dec(junk);
    std::size_t packets = 0;
    try {
      while (dec.next().has_value()) {
        ++packets;
        ASSERT_LT(packets, junk.size() + 1) << "decoder must make progress";
      }
    } catch (const DecodeError&) {
      // acceptable outcome for malformed input
    }
  }
}

TEST_P(PtFuzzTest, TruncatedValidStreamsNeverCrash) {
  std::mt19937_64 rng(GetParam());
  VectorSink sink;
  PacketEncoder enc(sink);
  enc.on_enable(0x400000);
  for (int i = 0; i < 500; ++i) {
    if (rng() % 5 == 0) {
      enc.on_indirect(0x400000 + (rng() % 0x10000));
    } else {
      enc.on_conditional((rng() & 1) != 0);
    }
  }
  enc.flush();
  for (std::size_t cut = 1; cut < sink.data().size(); cut += 7) {
    std::vector<std::uint8_t> prefix(sink.data().begin(),
                                     sink.data().begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    PacketDecoder dec(prefix);
    try {
      while (dec.next().has_value()) {
      }
    } catch (const DecodeError&) {
      // truncation mid-packet: expected
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtFuzzTest, ::testing::Values(7, 77, 777));

}  // namespace
