// Incremental-computation (change propagation) and forward-slice tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/incremental.h"
#include "core/inspector.h"
#include "memtrack/shared_memory.h"
#include "workloads/common.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;
using workloads::global_word;
using workloads::mutex_id;
using workloads::ScriptBuilder;

// Pipeline: A reads input page, publishes to shared page S1; B reads S1
// under the lock, publishes S2; C is independent of the input and runs
// concurrently. Spawn order makes the thread ids: C=1, A=2, B=3.
runtime::Program pipeline_program() {
  runtime::Program p;
  p.name = "pipeline";
  p.input.push_back({memtrack::AddressLayout::kInputBase, 5});
  const auto m = mutex_id(0);

  ScriptBuilder a(1);
  a.load(memtrack::AddressLayout::kInputBase);
  a.lock(m);
  a.store(global_word(0), 10);
  a.unlock(m);
  p.scripts.push_back(a.take());

  ScriptBuilder b(2);
  b.lock(m);
  b.load(global_word(0));
  b.store(global_word(512), 20);
  b.unlock(m);
  p.scripts.push_back(b.take());

  ScriptBuilder c(3);
  c.store(workloads::thread_heap_base(5), 30);
  p.scripts.push_back(c.take());

  ScriptBuilder main(4);
  main.spawn(2);          // C runs concurrently with the A->B pipeline
  main.spawn(0).join(1);  // A fully before B (join ordinal 1 = A)
  main.spawn(1).join(2);  // join ordinal 2 = B
  main.join(0);           // join ordinal 0 = C
  p.main_script = 3;
  p.scripts.push_back(main.take());
  return p;
}

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    program_ = pipeline_program();
    core::Inspector insp;
    result_ = insp.run(program_);
  }
  runtime::Program program_;
  runtime::ExecutionResult result_;
};

TEST_F(IncrementalTest, ChangedInputDirtiesTheChain) {
  const auto& g = *result_.graph;
  const auto inv = analysis::invalidate(
      g, {memtrack::page_id_of(memtrack::AddressLayout::kInputBase)});

  // A's reader node and B's reader node are dirty; C's nodes are not.
  std::unordered_set<cpg::ThreadId> dirty_threads;
  for (auto id : inv.dirty) dirty_threads.insert(g.node(id).thread);
  EXPECT_TRUE(dirty_threads.contains(2)) << "A reads the changed input";
  EXPECT_TRUE(dirty_threads.contains(3)) << "B reads A's output";
  EXPECT_FALSE(dirty_threads.contains(1)) << "C is input-independent";

  // Both intermediate pages become dirty.
  EXPECT_TRUE(page_set_contains(inv.dirty_pages,
                                memtrack::page_id_of(global_word(0))));
  EXPECT_TRUE(page_set_contains(inv.dirty_pages,
                                memtrack::page_id_of(global_word(512))));
  EXPECT_FALSE(page_set_contains(
      inv.dirty_pages, memtrack::page_id_of(workloads::thread_heap_base(5))));
}

TEST_F(IncrementalTest, NoChangeMeansFullReuse) {
  const auto inv = analysis::invalidate(*result_.graph, {});
  EXPECT_TRUE(inv.dirty.empty());
  EXPECT_DOUBLE_EQ(inv.reuse_fraction(result_.graph->nodes().size()), 1.0);
}

TEST_F(IncrementalTest, UnrelatedPageChangeDirtiesNothing) {
  const auto inv = analysis::invalidate(*result_.graph, {0xDEAD});
  EXPECT_TRUE(inv.dirty.empty());
}

TEST_F(IncrementalTest, ReuseFractionIsMonotoneInChangeSize) {
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.2;
  const auto program = workloads::make_histogram(config);
  core::Inspector insp;
  const auto result = insp.run(program);

  std::vector<std::uint64_t> pages;
  for (const auto& w : program.input) {
    pages.push_back(memtrack::page_id_of(w.addr));
  }
  double last_reuse = 1.0;
  for (std::size_t n : {1u, 8u, 32u, 128u}) {
    PageSet delta;
    for (std::size_t i = 0; i < n && i < pages.size(); ++i) {
      delta.push_back(pages[i]);
    }
    const auto inv = analysis::invalidate(*result.graph, delta);
    const double reuse = inv.reuse_fraction(result.graph->nodes().size());
    EXPECT_LE(reuse, last_reuse) << n << " changed pages";
    last_reuse = reuse;
  }
  EXPECT_LT(last_reuse, 1.0);
}

TEST_F(IncrementalTest, DirtySetEqualsForwardSliceReaders) {
  // The dirty set is contained in the forward slice of the first
  // reader of the changed page (change propagation follows dataflow).
  const auto& g = *result_.graph;
  const std::uint64_t input_page =
      memtrack::page_id_of(memtrack::AddressLayout::kInputBase);
  const auto inv = analysis::invalidate(g, {input_page});
  ASSERT_FALSE(inv.dirty.empty());
  const auto slice = g.forward_slice(inv.dirty.front());
  for (auto id : inv.dirty) {
    EXPECT_TRUE(std::binary_search(slice.begin(), slice.end(), id))
        << "dirty node " << id << " not reachable from the first reader";
  }
}

// --- forward slice ------------------------------------------------------

TEST_F(IncrementalTest, ForwardSliceCoversDownstream) {
  const auto& g = *result_.graph;
  // A's publishing node (thread 2, writes global 0).
  cpg::NodeId publisher = cpg::kInvalidNode;
  for (const auto& n : g.nodes()) {
    if (n.thread == 2 && n.writes_page(memtrack::page_id_of(global_word(0)))) {
      publisher = n.id;
    }
  }
  ASSERT_NE(publisher, cpg::kInvalidNode);
  const auto slice = g.forward_slice(publisher);
  // B's consumer node must be in the slice; concurrent C must not
  // (forward reachability includes schedule successors, and C has no
  // ordering with A beyond the initial spawn).
  bool b_in = false;
  for (auto id : slice) {
    if (g.node(id).thread == 3) b_in = true;
    EXPECT_NE(g.node(id).thread, 1u) << "concurrent C must not appear";
  }
  EXPECT_TRUE(b_in);
}

TEST_F(IncrementalTest, ForwardAndBackwardSlicesAgree) {
  const auto& g = *result_.graph;
  // If y is in forward_slice(x), then x is in backward_slice(y) --
  // sampled over all pairs of this small graph.
  for (const auto& x : g.nodes()) {
    const auto fwd = g.forward_slice(x.id);
    for (auto y : fwd) {
      if (y == x.id) continue;
      const auto back = g.backward_slice(y);
      // backward_slice uses latest-writer data edges only, so it can be
      // narrower; but control+sync reachability must agree.
      bool found = std::binary_search(back.begin(), back.end(), x.id);
      if (!found) {
        // Acceptable only if the forward reachability was via a
        // non-latest data edge; verify x at least happens-before y.
        EXPECT_TRUE(g.happens_before(x.id, y));
      }
    }
  }
}

}  // namespace
