// Wire-format tests: request parsing (round trips and precise typed
// errors for malformed input) and reply serialization (stable field
// order, escaping).
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "query/query.h"
#include "query/wire.h"

namespace {

using namespace inspector;
using namespace inspector::query;

template <typename T>
T parse_query(const std::string& line) {
  auto parsed = wire::parse_request(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  const auto* q = std::get_if<Query>(&parsed.value().op);
  EXPECT_NE(q, nullptr);
  return std::get<T>(*q);
}

Status parse_error(const std::string& line) {
  auto parsed = wire::parse_request(line);
  EXPECT_FALSE(parsed.ok()) << line;
  return parsed.status();
}

TEST(WireParse, EveryOperationRoundTrips) {
  EXPECT_EQ(parse_query<BackwardSliceQuery>(
                R"({"op":"backward_slice","node":5})")
                .node,
            5u);
  EXPECT_EQ(
      parse_query<ForwardSliceQuery>(R"({"op":"forward_slice","node":0})")
          .node,
      0u);
  EXPECT_EQ(parse_query<LatestWritersQuery>(
                R"({"op":"latest_writers","node":9})")
                .node,
            9u);
  EXPECT_EQ(parse_query<DataDependenciesQuery>(
                R"({"op":"data_dependencies","node":2})")
                .node,
            2u);
  EXPECT_EQ(parse_query<PageAccessorsQuery>(
                R"({"op":"page_accessors","page":1048576})")
                .page,
            1048576u);

  const auto hb = parse_query<HappensBeforeQuery>(
      R"({"op":"happens_before","first":1,"second":2})");
  EXPECT_EQ(hb.first, 1u);
  EXPECT_EQ(hb.second, 2u);

  const auto races = parse_query<RacesQuery>(
      R"({"op":"races","limit":20,"ignored_pages":[7,3]})");
  EXPECT_EQ(races.limit, 20u);
  EXPECT_EQ(races.ignored_pages, (PageSet{7, 3}));  // raw; engine sorts

  const auto taint = parse_query<TaintQuery>(
      R"({"op":"taint","seed_pages":[1,2],"carryover":false,"sink_kind":7})");
  EXPECT_EQ(taint.seed_pages, (PageSet{1, 2}));
  EXPECT_FALSE(taint.track_register_carryover);
  EXPECT_EQ(taint.sink_kind, sync::SyncEventKind::kBarrierWait);
  const auto taint_defaults = parse_query<TaintQuery>(R"({"op":"taint"})");
  EXPECT_TRUE(taint_defaults.track_register_carryover)
      << "carryover defaults to true";
  EXPECT_EQ(taint_defaults.sink_kind, sync::SyncEventKind::kThreadExit);

  EXPECT_EQ(parse_query<InvalidateQuery>(
                R"({"op":"invalidate","changed_pages":[3]})")
                .changed_pages,
            (PageSet{3}));
  (void)parse_query<CriticalPathQuery>(R"({"op":"critical_path"})");
  (void)parse_query<StatsQuery>(R"({"op":"stats"})");
}

TEST(WireParse, EnvelopeFieldsAndNext) {
  auto parsed = wire::parse_request(
      R"({"id":17,"op":"backward_slice","node":1,"page_size":32})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 17u);
  EXPECT_EQ(parsed.value().page_size, 32u);

  auto next = wire::parse_request(R"({"id":9,"op":"next","cursor":4})");
  ASSERT_TRUE(next.ok());
  const auto* n = std::get_if<wire::NextRequest>(&next.value().op);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->cursor, 4u);
}

TEST(WireParse, MalformedRequestsAreTypedErrors) {
  // Every one of these must produce kInvalidArgument with a usable
  // message -- never a throw.
  const struct {
    const char* line;
    const char* needle;
  } cases[] = {
      {"", "unexpected end"},
      {"not json", "unexpected character"},
      {"[1,2]", "must be a JSON object"},
      {R"({"op":"backward_slice","node":5} trailing)", "trailing"},
      {R"({"node":5})", "missing required field \"op\""},
      {R"({"op":42})", "\"op\" must be a string"},
      {R"({"op":"warp_speed"})", "unknown op"},
      {R"({"op":"backward_slice"})", "missing required field \"node\""},
      {R"({"op":"backward_slice","node":"five"})", "unsigned integer"},
      {R"({"op":"backward_slice","node":-1})", "unsigned integers"},
      {R"({"op":"backward_slice","node":1.5})", "unsigned integers"},
      {R"({"op":"backward_slice","node":99999999999})", "node id range"},
      {R"({"op":"backward_slice","node":5,"bogus":1})", "unknown field"},
      {R"({"op":"taint","seed_pages":"all"})", "array of page ids"},
      {R"({"op":"taint","seed_pages":[1,"x"]})", "unsigned integers"},
      {R"({"op":"taint","carryover":1})", "must be a boolean"},
      {R"({"op":"taint","sink_kind":99})", "SyncEventKind"},
      {R"({"op":"next"})", "missing required field \"cursor\""},
      {R"({"op":"next","cursor":1,"page_size":9})", "not allowed"},
      {R"({"op":"stats","node":1})", "unknown field"},
      {R"({"op":"stats","op":"races"})", "duplicate key"},
      {R"({"op":"races","limit":18446744073709551616})", "overflows"},
      // Scalar replies never paginate: a page_size here would be
      // silently ignored, so it is rejected like any unknown key.
      {R"({"op":"stats","page_size":8})", "not allowed"},
      {R"({"op":"happens_before","first":0,"second":1,"page_size":2})",
       "not allowed"},
      // Unknown top-level keys are unknown whatever their value type.
      {R"({"op":"happens_before","first":0,"second":1,"third":2})",
       "unknown field"},
      {R"({"op":"critical_path","limit":5})", "unknown field"},
      {R"({"op":"invalidate","changed_pages":[1],"seed_pages":[2]})",
       "unknown field"},
      {R"({"op":"next","cursor":1,"junk":null})", "unknown field"},
  };
  for (const auto& c : cases) {
    const Status status = parse_error(c.line);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.line;
    EXPECT_NE(status.message().find(c.needle), std::string::npos)
        << c.line << " -> " << status.message();
  }
}

TEST(WireParse, UnicodeEscapesInStrings) {
  // The serializer emits \u00XX for control characters, so the parser
  // must accept standard \uXXXX escapes (including surrogate pairs).
  auto ascii = wire::parse_request(R"({"op":"stats"})");
  ASSERT_TRUE(ascii.ok()) << ascii.status().message();
  EXPECT_TRUE(
      std::holds_alternative<StatsQuery>(std::get<Query>(ascii.value().op)));

  // \u escapes decode to UTF-8: "stats" is "stats"; a BMP
  // codepoint plus a surrogate pair parse into an op name that does
  // not exist, so the error is the typed unknown-op one (containing
  // the decoded UTF-8 bytes), not an escape error.
  auto escaped = wire::parse_request(R"({"op":"\u0073tats"})");
  ASSERT_TRUE(escaped.ok()) << escaped.status().message();
  EXPECT_TRUE(std::holds_alternative<StatsQuery>(
      std::get<Query>(escaped.value().op)));
  auto astral = wire::parse_request(R"({"op":"\u00e9\ud83d\ude00"})");
  EXPECT_EQ(astral.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(
      astral.status().message().find(
          "unknown op \"\xC3\xA9\xF0\x9F\x98\x80\""),
      std::string::npos)
      << astral.status().message();

  for (const char* line :
       {R"({"op":"\u12"})", R"({"op":"\uZZZZ"})", R"({"op":"\ud83d"})",
        R"({"op":"\ude00"})"}) {
    const Status status = parse_error(line);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(WireParse, EchoIdSurvivesParseErrors) {
  std::uint64_t id = 0;
  auto parsed =
      wire::parse_request(R"({"id":31,"op":"warp_speed"})", &id);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(id, 31u);
}

TEST(WireSerialize, CanonicalQueryFormIsStable) {
  EXPECT_EQ(wire::serialize_query(BackwardSliceQuery{5}),
            R"({"op":"backward_slice","node":5})");
  EXPECT_EQ(wire::serialize_query(RacesQuery{20, {3, 7}}),
            R"({"op":"races","limit":20,"ignored_pages":[3,7]})");
  EXPECT_EQ(
      wire::serialize_query(TaintQuery{{1, 2}, false}),
      R"({"op":"taint","seed_pages":[1,2],"carryover":false,"sink_kind":10})");
  EXPECT_EQ(wire::serialize_query(StatsQuery{}), R"({"op":"stats"})");

  // The canonical form doubles as the engine cache key, so distinct
  // queries must never collide.
  EXPECT_NE(wire::serialize_query(BackwardSliceQuery{5}),
            wire::serialize_query(ForwardSliceQuery{5}));
}

TEST(WireSerialize, ReplyEnvelopeAndPayloads) {
  Reply reply;
  reply.total_items = 3;
  reply.result = NodeListResult{{1, 2, 3}};
  EXPECT_EQ(wire::serialize_reply(7, Result<Reply>(reply)),
            R"({"id":7,"status":"ok","total_items":3,"has_more":false,)"
            R"("nodes":[1,2,3]})");

  reply.has_more = true;
  reply.cursor = 2;
  EXPECT_EQ(wire::serialize_reply(7, Result<Reply>(reply)),
            R"({"id":7,"status":"ok","total_items":3,"has_more":true,)"
            R"("cursor":2,"nodes":[1,2,3]})");

  Reply races;
  races.total_items = 1;
  races.result = RaceListResult{{{4, 9, 77, true}}};
  EXPECT_EQ(wire::serialize_reply(1, Result<Reply>(races)),
            R"({"id":1,"status":"ok","total_items":1,"has_more":false,)"
            R"("races":[{"first":4,"second":9,"page":77,)"
            R"("write_write":true}]})");

  Reply edges;
  edges.total_items = 1;
  edges.result =
      EdgeListResult{{cpg::Edge{1, 2, cpg::EdgeKind::kData, 77}}};
  EXPECT_EQ(wire::serialize_reply(2, Result<Reply>(edges)),
            R"({"id":2,"status":"ok","total_items":1,"has_more":false,)"
            R"("edges":[{"from":1,"to":2,"kind":"data","object":77}]})");
}

TEST(WireSerialize, ErrorRepliesEscapeMessages) {
  const Result<Reply> error(StatusCode::kNotFound, "no \"page\"\nhere");
  EXPECT_EQ(wire::serialize_reply(3, error),
            R"({"id":3,"status":"not_found",)"
            R"("error":"no \"page\"\nhere"})");
}

TEST(WireSerialize, FaultStatusCodesHaveStableWireNames) {
  // The fault-tolerance codes ride the same envelope as every other
  // error: clients match on these exact strings.
  const Result<Reply> gone(StatusCode::kUnavailable,
                           "shard 2 (s/shard-002.bin) is quarantined");
  EXPECT_EQ(wire::serialize_reply(4, gone),
            R"({"id":4,"status":"unavailable",)"
            R"("error":"shard 2 (s/shard-002.bin) is quarantined"})");
  const Result<Reply> lost(StatusCode::kDataLoss, "file checksum mismatch");
  EXPECT_EQ(wire::serialize_reply(5, lost),
            R"({"id":5,"status":"data_loss",)"
            R"("error":"file checksum mismatch"})");
}

TEST(WireSerialize, DegradedMarkerFollowsTheStatusField) {
  // The marker sits right after "status":"ok" and appears only when
  // set, so replies from a healthy store are byte-identical to the
  // pre-degraded-mode wire format.
  Reply reply;
  reply.total_items = 2;
  reply.result = NodeListResult{{4, 5}};
  const std::string plain = wire::serialize_reply(8, Result<Reply>(reply));
  EXPECT_EQ(plain,
            R"({"id":8,"status":"ok","total_items":2,"has_more":false,)"
            R"("nodes":[4,5]})");
  reply.degraded = true;
  EXPECT_EQ(wire::serialize_reply(8, Result<Reply>(reply)),
            R"({"id":8,"status":"ok","degraded":true,"total_items":2,)"
            R"("has_more":false,"nodes":[4,5]})");
}

TEST(WireRoundTrip, ParsedQuerySerializesBackToCanonicalForm) {
  // The canonical form of every query must itself be parseable (logs
  // of canonical queries are replayable), including taint's sink_kind.
  const std::string canonicals[] = {
      R"({"op":"races","limit":5,"ignored_pages":[1,2]})",
      R"({"op":"taint","seed_pages":[1,2],"carryover":false,"sink_kind":10})",
      R"({"op":"backward_slice","node":5})",
      R"({"op":"critical_path"})",
  };
  for (const std::string& canonical : canonicals) {
    auto parsed = wire::parse_request(canonical);
    ASSERT_TRUE(parsed.ok()) << canonical << ": "
                             << parsed.status().message();
    EXPECT_EQ(wire::serialize_query(std::get<Query>(parsed.value().op)),
              canonical);
  }
}

}  // namespace
