// End-to-end smoke test: every workload runs under both modes, the CPG
// validates, and native/INSPECTOR final memory states agree.
#include <gtest/gtest.h>

#include "core/inspector.h"
#include "workloads/registry.h"

namespace {

using inspector::core::Inspector;
using inspector::workloads::WorkloadConfig;

TEST(Smoke, HistogramEndToEnd) {
  WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.25;
  auto program = inspector::workloads::make_histogram(config);

  Inspector insp;
  auto cmp = insp.compare(program);
  ASSERT_TRUE(cmp.traced.graph.has_value());
  std::string reason;
  EXPECT_TRUE(cmp.traced.graph->validate(&reason)) << reason;
  EXPECT_GT(cmp.time_overhead(), 1.0);
}

}  // namespace
