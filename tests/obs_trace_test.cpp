// Tracing contract (src/obs/trace.h): a client span's context rides
// kTrace frames across the UDS boundary, so a routed query produces
// ONE span tree -- client span -> router rpc span -> route span /
// worker rpc span -> worker-side phases -- in the JSON-lines sink.
// And the inverse guarantee, the one the whole layer is built around:
// turning tracing on must not change a single reply byte, at any
// analysis worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cpg/graph.h"
#include "history_fixtures.h"
#include "net/client.h"
#include "net/dispatcher.h"
#include "net/query_service.h"
#include "net/router.h"
#include "net/uds.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "query/wire.h"
#include "shard/engine.h"
#include "shard/planner.h"
#include "shard/store.h"
#include "util/parallel.h"

namespace {

using namespace inspector;

std::string socket_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Value of a `"key":"value"` string field in one JSON span line;
/// empty if absent. The emitter writes flat one-line objects, so a
/// substring scan is an adequate parser for test assertions.
std::string json_string_field(const std::string& line,
                              const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return {};
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

struct ParsedSpan {
  std::string trace;
  std::string span;
  std::string parent;
  std::string name;
};

std::vector<ParsedSpan> read_spans(const std::string& path) {
  std::vector<ParsedSpan> spans;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (json_string_field(line, "type") != "span") continue;
    ParsedSpan s;
    s.trace = json_string_field(line, "trace");
    s.span = json_string_field(line, "span");
    s.parent = json_string_field(line, "parent");
    s.name = json_string_field(line, "name");
    spans.push_back(std::move(s));
  }
  return spans;
}

TEST(ObsTrace, ContextPropagatesAcrossRouterIntoOneTree) {
  const std::string trace_path = ::testing::TempDir() + "obs_trace_tree.jsonl";
  std::remove(trace_path.c_str());
  obs::Tracer::configure(trace_path);

  // In-process router rig: a sharded store, two workers, one router
  // front -- all sharing this process's trace sink, so the whole tree
  // lands in one file.
  const auto graph =
      std::make_shared<const cpg::Graph>(fixtures::random_history(7));
  const std::string dir = ::testing::TempDir() + "obs_trace_store";
  std::filesystem::remove_all(dir);
  auto manifest = shard::write_store(*graph, dir, shard::PlanOptions{3});
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();

  std::vector<net::WorkerEndpoint> endpoints;
  std::vector<std::unique_ptr<net::QueryService>> services;
  std::vector<std::unique_ptr<net::ServeLoop>> loops;
  for (unsigned w = 0; w < 2; ++w) {
    net::WorkerEndpoint ep;
    ep.socket_path = socket_path("obs_trace.w" + std::to_string(w) + ".sock");
    ep.shard_lo = manifest->shard_count * w / 2;
    ep.shard_hi = manifest->shard_count * (w + 1) / 2;
    auto store = shard::ShardStore::open(dir);
    ASSERT_TRUE(store.ok()) << store.status().message();
    services.push_back(std::make_unique<net::QueryService>(
        std::make_shared<shard::ShardedQueryEngine>(std::move(store).value())));
    auto server = net::uds::Server::listen(ep.socket_path);
    ASSERT_TRUE(server.ok()) << server.status().message();
    loops.push_back(std::make_unique<net::ServeLoop>(std::move(server).value(),
                                                     *services.back()));
    loops.back()->start();
    endpoints.push_back(std::move(ep));
  }
  net::RouterService router(manifest.value(), endpoints);
  auto front_server = net::uds::Server::listen(socket_path("obs_trace.sock"));
  ASSERT_TRUE(front_server.ok()) << front_server.status().message();
  net::ServeLoop front(std::move(front_server).value(), router);
  front.start();

  std::string client_trace;
  std::string client_span;
  {
    auto client = net::QueryClient::connect(front.path());
    ASSERT_TRUE(client.ok()) << client.status().message();
    // The client-side span: its context rides a kTrace frame ahead of
    // the request, so every server-side span below joins its trace.
    obs::Span span("client");
    ASSERT_TRUE(span.active());
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(span.context().trace_id));
    client_trace = buf;
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(span.context().span_id));
    client_span = buf;
    obs::ContextScope scope(span.context());
    const auto reply =
        (*client)->call(R"({"id":1,"op":"backward_slice","node":0})");
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    ASSERT_TRUE((*client)->goodbye().ok());
    span.finish();
  }

  // Joining the serve loops flushes every server-side span (spans are
  // emitted after replies hit the wire, on the dispatcher threads).
  front.stop();
  for (auto& loop : loops) loop->stop();
  obs::Tracer::configure("");

  const auto spans = read_spans(trace_path);
  ASSERT_FALSE(spans.empty());
  std::map<std::string, ParsedSpan> by_id;
  for (const auto& s : spans) by_id[s.span] = s;

  // Every span in the file belongs to the client's trace: the context
  // crossed client -> router and router -> worker without forking.
  for (const auto& s : spans) {
    EXPECT_EQ(s.trace, client_trace) << s.name;
  }

  // The router's rpc span is the client span's child; the worker's
  // rpc span and the route span hang off the router's rpc span.
  std::string router_rpc;
  for (const auto& s : spans) {
    if (s.name == "rpc" && s.parent == client_span) router_rpc = s.span;
  }
  ASSERT_FALSE(router_rpc.empty()) << "no rpc span parented to the client";
  bool saw_worker_rpc = false;
  bool saw_route = false;
  for (const auto& s : spans) {
    if (s.name == "rpc" && s.parent == router_rpc) saw_worker_rpc = true;
    if (s.name == "route" && s.parent == router_rpc) saw_route = true;
  }
  EXPECT_TRUE(saw_worker_rpc) << "worker rpc span did not join the trace";
  EXPECT_TRUE(saw_route) << "route span did not join the trace";

  // The client span itself was emitted, as the tree's root.
  ASSERT_TRUE(by_id.contains(client_span));
  EXPECT_EQ(by_id[client_span].name, "client");
  EXPECT_TRUE(by_id[client_span].parent.empty());
}

/// One mixed session's serialized replies from a fresh engine.
std::vector<std::string> session_replies(
    const std::shared_ptr<const cpg::Graph>& graph) {
  const std::vector<std::string> lines = {
      R"({"id":1,"op":"stats"})",
      R"({"id":2,"op":"critical_path","page_size":3})",
      R"({"id":3,"op":"next","cursor":1})",
      R"({"id":4,"op":"backward_slice","node":0})",
      R"({"id":5,"op":"races","limit":5})",
      R"({"id":6,"op":"forward_slice","node":1,"page_size":4})",
      R"({"id":7,"op":"next","cursor":2})",
      R"({"id":8,"op":"taint","seed_pages":[0]})",
  };
  query::QueryEngine engine(graph);
  std::vector<std::string> replies;
  for (const std::string& line : lines) {
    std::uint64_t id = 0;
    const auto parsed = query::wire::parse_request(line, &id);
    if (!parsed.ok()) {
      replies.push_back(query::wire::serialize_reply(
          id, query::Result<query::Reply>(parsed.status())));
      continue;
    }
    if (const auto* next =
            std::get_if<query::wire::NextRequest>(&parsed.value().op)) {
      replies.push_back(
          query::wire::serialize_reply(id, engine.next(next->cursor)));
      continue;
    }
    query::QueryOptions options;
    options.page_size = parsed.value().page_size;
    replies.push_back(query::wire::serialize_reply(
        id, engine.run(std::get<query::Query>(parsed.value().op), options)));
  }
  return replies;
}

TEST(ObsTrace, TracingDoesNotPerturbReplyBytes) {
  const auto graph =
      std::make_shared<const cpg::Graph>(fixtures::random_history(11));

  for (const unsigned workers : {1u, 8u}) {
    util::set_analysis_threads(workers);

    obs::Tracer::configure("");
    obs::Tracer::set_slow_query_threshold_ms(0);
    const auto off = session_replies(graph);

    // Full instrumentation: trace sink on, aggressive slow-query log.
    // Metrics are always recording; the only byte-visible surface the
    // obs layer could have is this one, and it must stay silent.
    const std::string trace_path =
        ::testing::TempDir() + "obs_trace_determinism.jsonl";
    obs::Tracer::configure(trace_path);
    obs::Tracer::set_slow_query_threshold_ms(1);
    const auto on = session_replies(graph);

    obs::Tracer::configure("");
    obs::Tracer::set_slow_query_threshold_ms(0);

    EXPECT_EQ(on, off) << "workers=" << workers;
    // The trace sink did observe the traced session, so "identical"
    // above is not vacuous.
    std::error_code ec;
    EXPECT_GT(std::filesystem::file_size(trace_path, ec), 0u);
  }
  util::set_analysis_threads(0);
}

}  // namespace
