// AUX ring-buffer tests: full-trace vs snapshot semantics (§V-B, §VI).
#include <gtest/gtest.h>

#include <numeric>

#include "ptsim/decoder.h"
#include "ptsim/encoder.h"
#include "ptsim/ring_buffer.h"

namespace {

using namespace inspector::ptsim;

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(AuxRing, WriteAndDrain) {
  AuxRingBuffer ring(16);
  const auto data = bytes({1, 2, 3, 4});
  ring.write(data);
  EXPECT_EQ(ring.readable(), 4u);
  EXPECT_EQ(ring.drain(), data);
  EXPECT_EQ(ring.readable(), 0u);
  EXPECT_EQ(ring.bytes_written(), 4u);
}

TEST(AuxRing, WrapsAroundCapacity) {
  AuxRingBuffer ring(8);
  ring.write(bytes({1, 2, 3, 4, 5, 6}));
  (void)ring.drain();
  // Next write wraps the physical buffer.
  ring.write(bytes({7, 8, 9, 10}));
  EXPECT_EQ(ring.drain(), bytes({7, 8, 9, 10}));
}

TEST(AuxRing, FullTraceDropsOnOverflow) {
  AuxRingBuffer ring(8, RingMode::kFullTrace);
  ring.write(bytes({1, 2, 3, 4, 5, 6}));
  ring.write(bytes({7, 8, 9}));  // does not fit: dropped entirely
  EXPECT_TRUE(ring.take_overflow());
  EXPECT_FALSE(ring.take_overflow()) << "flag must reset after read";
  EXPECT_EQ(ring.bytes_lost(), 3u);
  EXPECT_EQ(ring.overflow_count(), 1u);
  EXPECT_EQ(ring.drain(), bytes({1, 2, 3, 4, 5, 6}));
}

TEST(AuxRing, SnapshotOverwritesOldest) {
  AuxRingBuffer ring(8, RingMode::kSnapshot);
  ring.write(bytes({1, 2, 3, 4, 5, 6}));
  ring.write(bytes({7, 8, 9, 10}));  // overwrites 1,2
  EXPECT_FALSE(ring.take_overflow());
  EXPECT_EQ(ring.bytes_lost(), 0u);
  const auto window = ring.snapshot();
  EXPECT_EQ(window, bytes({3, 4, 5, 6, 7, 8, 9, 10}));
  // snapshot() does not consume.
  EXPECT_EQ(ring.readable(), 8u);
}

TEST(AuxRing, OversizedWriteAlwaysOverflows) {
  AuxRingBuffer ring(4, RingMode::kSnapshot);
  ring.write(bytes({1, 2, 3, 4, 5}));
  EXPECT_TRUE(ring.take_overflow());
  EXPECT_EQ(ring.bytes_lost(), 5u);
}

TEST(AuxRing, ZeroCapacityRejected) {
  EXPECT_THROW(AuxRingBuffer(0), std::invalid_argument);
}

TEST(AuxRing, SnapshotWindowIsDecodableAfterSync) {
  // Fill a small snapshot ring far beyond capacity with encoded PT; the
  // surviving window must decode from its first PSB (the §VI recipe).
  AuxRingBuffer ring(512, RingMode::kSnapshot);
  EncoderOptions opts;
  opts.psb_period_bytes = 64;
  PacketEncoder enc(ring, opts);
  enc.on_enable(0x1000);
  for (int i = 0; i < 10000; ++i) enc.on_conditional(i % 3 != 0);
  enc.flush();

  const auto window = ring.snapshot();
  ASSERT_EQ(window.size(), 512u);
  PacketDecoder dec(window);
  ASSERT_TRUE(dec.sync_forward());
  std::uint64_t tnt_bits = 0;
  while (auto p = dec.next()) {
    if (p->type == PacketType::kTnt) tnt_bits += p->tnt.count;
  }
  EXPECT_GT(tnt_bits, 100u);
}

TEST(AuxRing, ManySmallWritesAccumulate) {
  AuxRingBuffer ring(1024);
  std::uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    ring.write(bytes({i % 256, (i + 1) % 256}));
    total += 2;
  }
  EXPECT_EQ(ring.bytes_written(), total);
  EXPECT_EQ(ring.drain().size(), total);
}

}  // namespace
