// Tests for the frame layer: header round-trips, every malformed-input
// class as a typed Status, and the exhaustive single-bit-flip sweep
// the CRC-32 checksum exists to win.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"

namespace {

using namespace inspector;
using net::decode_frame;
using net::decode_header;
using net::Frame;
using net::FrameHeader;
using net::FrameType;

std::vector<std::uint8_t> encode(FrameType type, std::uint8_t flags,
                                 std::uint64_t stream_id,
                                 std::string_view payload) {
  std::vector<std::uint8_t> out;
  net::append_frame(out, type, flags, stream_id, payload);
  return out;
}

Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  auto frame = decode_frame(bytes, pos);
  EXPECT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(pos, bytes.size());
  return std::move(frame).value();
}

TEST(NetFrame, RoundTripsEveryTypeAndFlag) {
  const std::string payload = "{\"id\":7,\"op\":\"stats\"}";
  for (std::uint8_t t = 0; t <= net::kMaxFrameType; ++t) {
    for (const std::uint8_t flags : {std::uint8_t{0}, net::kFlagEndStream}) {
      const auto type = static_cast<FrameType>(t);
      const auto bytes = encode(type, flags, 0x1122334455667788ULL, payload);
      ASSERT_EQ(bytes.size(), net::kFrameHeaderSize + payload.size());
      const Frame frame = decode_one(bytes);
      EXPECT_EQ(frame.header.type, type);
      EXPECT_EQ(frame.header.flags, flags);
      EXPECT_EQ(frame.header.version, net::kFrameFormatVersion);
      EXPECT_EQ(frame.header.stream_id, 0x1122334455667788ULL);
      EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()),
                payload);
    }
  }
}

TEST(NetFrame, RoundTripsEmptyPayload) {
  const auto bytes = encode(FrameType::kGoodbye, 0, 0, "");
  const Frame frame = decode_one(bytes);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_FALSE(frame.header.end_stream());
}

TEST(NetFrame, DecodesBackToBackFrames) {
  auto bytes = encode(FrameType::kData, 0, 1, "first half ");
  const auto second = encode(FrameType::kData, net::kFlagEndStream, 1,
                             "second half");
  bytes.insert(bytes.end(), second.begin(), second.end());
  std::size_t pos = 0;
  const auto a = decode_frame(bytes, pos);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->header.end_stream());
  const auto b = decode_frame(bytes, pos);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->header.end_stream());
  EXPECT_EQ(pos, bytes.size());
}

TEST(NetFrame, TruncatedHeaderIsInvalidArgument) {
  const auto bytes = encode(FrameType::kData, 0, 1, "payload");
  for (std::size_t keep = 0; keep < net::kFrameHeaderSize; ++keep) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    std::size_t pos = 0;
    const auto frame = decode_frame(cut, pos);
    ASSERT_FALSE(frame.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(NetFrame, TruncatedPayloadIsInvalidArgument) {
  const auto bytes = encode(FrameType::kData, 0, 1, "payload");
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 1);
  std::size_t pos = 0;
  const auto frame = decode_frame(cut, pos);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFrame, BadMagicIsInvalidArgument) {
  auto bytes = encode(FrameType::kData, 0, 1, "x");
  bytes[0] ^= 0xFF;
  const auto header =
      decode_header(std::span(bytes).subspan(0, net::kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(header.status().message().find("magic"), std::string::npos);
}

TEST(NetFrame, FutureVersionIsInvalidArgument) {
  auto bytes = encode(FrameType::kData, 0, 1, "x");
  bytes[4] = 2;  // version lo byte
  const auto header =
      decode_header(std::span(bytes).subspan(0, net::kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(header.status().message().find("version"), std::string::npos);
}

TEST(NetFrame, UnknownTypeIsInvalidArgument) {
  auto bytes = encode(FrameType::kData, 0, 1, "x");
  bytes[6] = net::kMaxFrameType + 1;
  const auto header =
      decode_header(std::span(bytes).subspan(0, net::kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFrame, UnknownFlagsAreInvalidArgument) {
  auto bytes = encode(FrameType::kData, 0, 1, "x");
  bytes[7] = 0x80;
  const auto header =
      decode_header(std::span(bytes).subspan(0, net::kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFrame, OversizedLengthIsInvalidArgument) {
  auto bytes = encode(FrameType::kData, 0, 1, "x");
  const std::uint32_t huge = net::kMaxFramePayload + 1;
  bytes[16] = static_cast<std::uint8_t>(huge);
  bytes[17] = static_cast<std::uint8_t>(huge >> 8);
  bytes[18] = static_cast<std::uint8_t>(huge >> 16);
  bytes[19] = static_cast<std::uint8_t>(huge >> 24);
  const auto header =
      decode_header(std::span(bytes).subspan(0, net::kFrameHeaderSize));
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(header.status().message().find("cap"), std::string::npos);
}

// The reason the header carries a CRC: flip ANY single bit of a frame
// and the decoder must reject it with a typed error -- either a field
// validation (kInvalidArgument) or the checksum (kDataLoss). No flip
// may produce a frame that decodes "successfully" with different
// contents.
TEST(NetFrame, EverySingleBitFlipIsDetected) {
  const auto bytes =
      encode(FrameType::kData, net::kFlagEndStream, 42,
             "{\"id\":3,\"op\":\"backward_slice\",\"node\":20}");
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    std::size_t pos = 0;
    const auto frame = decode_frame(flipped, pos);
    ASSERT_FALSE(frame.ok()) << "bit " << bit << " flip went undetected";
    const StatusCode code = frame.status().code();
    EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                code == StatusCode::kDataLoss)
        << "bit " << bit << ": " << frame.status().message();
  }
}

// Corrupting payload bytes (header intact) must always be kDataLoss:
// the fields parse, only the checksum can catch it.
TEST(NetFrame, PayloadBitFlipsAreDataLoss) {
  const auto bytes = encode(FrameType::kData, 0, 9, "canonical reply bytes");
  for (std::size_t bit = net::kFrameHeaderSize * 8; bit < bytes.size() * 8;
       ++bit) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    std::size_t pos = 0;
    const auto frame = decode_frame(flipped, pos);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss)
        << frame.status().message();
  }
}

TEST(NetFrame, CrcMatchesKnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string_view check = "123456789";
  const std::uint32_t crc = net::crc32_finalize(net::crc32_update(
      net::kCrc32Init,
      std::span(reinterpret_cast<const std::uint8_t*>(check.data()),
                check.size())));
  EXPECT_EQ(crc, 0xCBF43926u);
}

// A frame whose length field claims fewer bytes than were damaged:
// verify_frame sees exactly payload_length bytes, so the pairing of
// decode_header + verify_frame is what the channel relies on.
TEST(NetFrame, VerifyFrameChecksDeclaredPayloadOnly) {
  const auto bytes = encode(FrameType::kData, 0, 5, "abc");
  const auto header =
      decode_header(std::span(bytes).subspan(0, net::kFrameHeaderSize));
  ASSERT_TRUE(header.ok());
  EXPECT_TRUE(net::verify_frame(*header,
                                std::span(bytes).subspan(
                                    0, net::kFrameHeaderSize),
                                std::span(bytes).subspan(net::kFrameHeaderSize))
                  .ok());
}

}  // namespace
