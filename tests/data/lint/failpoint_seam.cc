// LINT-PATH: src/shard/fixture_io.cpp
//
// failpoint-seam: raw IO in the storage layers must go through the
// util::failpoint-instrumented helpers so crash sweeps cover it.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fixture {

int raw_posix(const std::string& path) {
  const int fd = ::open(path.c_str(), 0);  // EXPECT: failpoint-seam
  char b;
  ::read(fd, &b, 1);  // EXPECT: failpoint-seam
  ::fsync(fd);        // EXPECT: failpoint-seam
  return fd;
}

void raw_stdio(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");  // EXPECT: failpoint-seam
  if (f != nullptr) std::fclose(f);
}

void raw_stream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);  // EXPECT: failpoint-seam
  (void)in;
}

void raw_fs_rename(const std::string& a, const std::string& b) {
  std::filesystem::rename(a, b);  // EXPECT: failpoint-seam
}

// None of these are findings: method calls and non-std qualifiers are
// wrappers, not the raw syscalls.
struct Store {
  void open(const std::string&) {}
  int read(char*, int) { return 0; }
};

void wrappers(Store& store, const std::string& path) {
  store.open(path);
  char buf[8];
  store.read(buf, sizeof buf);
  Store s;
  s.open(path);
}

// The seam helper itself hosts the raw call, with a justified allow.
int seam_helper(const std::string& path) {
  // lint: allow(failpoint-seam) this IS the seam helper; the failpoint fires one line above the syscall
  const int fd = ::open(path.c_str(), 0);
  return fd;
}

}  // namespace fixture
