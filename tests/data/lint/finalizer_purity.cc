// LINT-PATH: src/net/fixture_writer.cpp
//
// finalizer-purity: stdout belongs to reply bytes only, and blocking
// emission may not run inside the finalizer phase (write_loop /
// *finalize* functions) before the reply is on the wire.
#include <cstdio>
#include <iostream>
#include <string>

namespace fixture {

struct Span {
  void finish() {}
  void annotate(const char*) {}
};

struct Stream {
  Span* span = nullptr;
};

void debug_dump(const std::string& s) {
  std::cout << s;  // EXPECT: finalizer-purity
  printf("%s", s.c_str());  // EXPECT: finalizer-purity
  fwrite(s.data(), 1, s.size(), stdout);  // EXPECT: finalizer-purity
}

// stderr diagnostics outside the finalizer phase are fine.
void warn(const std::string& s) { fprintf(stderr, "%s\n", s.c_str()); }

// Emission inside the finalizer phase, before send: a finding even
// through a member call.
void write_loop(Stream& stream) {
  stream.span->finish();  // EXPECT: finalizer-purity
  fflush(stderr);  // EXPECT: finalizer-purity
}

// Same calls outside any finalizer-named function: not findings.
void teardown(Stream& stream) {
  stream.span->finish();
  fflush(stderr);
}

// Non-blocking recording is always fine, even in the finalizer phase.
void run_finalizers(Stream& stream) {
  stream.span->annotate("ok");
  // lint: allow(finalizer-purity) deliberate: the reply bytes are already on the wire at this point
  stream.span->finish();
}

// "cout" in a string literal is not a finding.
const char* kDoc = "never write to std::cout from src/";

}  // namespace fixture
