// LINT-PATH: src/query/fixture_det.cpp
//
// determinism-hygiene: reply-producing paths may not depend on hash
// order, randomness, or wall clocks -- replies must be bit-identical.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

int hash_order(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [k, v] : counts) {  // EXPECT: determinism-hygiene
    total += v + static_cast<int>(k.size());
  }
  return total;
}

int sources() {
  int x = rand();  // EXPECT: determinism-hygiene
  std::mt19937 gen(42);  // EXPECT: determinism-hygiene
  const auto now = std::chrono::system_clock::now();  // EXPECT: determinism-hygiene
  (void)now;
  const auto t = time(nullptr);  // EXPECT: determinism-hygiene
  return x + static_cast<int>(gen() % 7) + static_cast<int>(t);
}

// None of these are findings: ordered containers, classic loops,
// steady_clock durations, and member calls named like the banned
// free functions.
int clean(const std::map<std::string, int>& ordered,
          const std::unordered_map<std::string, int>& counts,
          Source& src) {
  int total = 0;
  for (const auto& [k, v] : ordered) total += v + static_cast<int>(k.size());
  std::vector<std::string> keys;
  keys.reserve(counts.size());
  for (std::size_t i = 0; i < keys.size(); ++i) total += 1;
  const auto t0 = std::chrono::steady_clock::now();
  total += src.rand();
  (void)t0;
  return total;
}

int allowed(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  // lint: allow(determinism-hygiene) order-independent sum; the fold is commutative
  for (const auto& [k, v] : counts) total += v + static_cast<int>(k.size());
  return total;
}

}  // namespace fixture
