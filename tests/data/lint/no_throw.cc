// LINT-PATH: src/query/fixture_no_throw.cpp
//
// no-throw-across-boundary: `throw` anywhere in the exception-free
// boundary directories is a finding unless annotated.
#include <stdexcept>
#include <string>

namespace fixture {

int parse(const std::string& s) {
  if (s.empty()) {
    throw std::runtime_error("empty");  // EXPECT: no-throw-across-boundary
  }
  return static_cast<int>(s.size());
}

// A `throw` in prose or in a string literal is not a finding: the
// linter sees tokens, not text.
std::string describe() {
  return "this engine never calls throw across the boundary";
}

// `rethrow_exception` is a different identifier, not the keyword.
void reraise();

int accessor(bool have) {
  if (!have) {
    // lint: allow(no-throw-across-boundary) documented programming-error accessor; callers must check first
    throw std::logic_error("accessor on empty");
  }
  return 1;
}

}  // namespace fixture
