// LINT-PATH: src/query/fixture_suppress.cpp
//
// Annotation machinery: trailing and whole-line allows suppress;
// missing justifications and unknown rule names are themselves
// findings (lint-annotation), and the underlying finding survives.
#include <stdexcept>

namespace fixture {

struct Internal {};

int trailing_allow(bool ok) {
  if (!ok) throw Internal{};  // lint: allow(no-throw-across-boundary) internal type; caught at the boundary
  return 0;
}

int whole_line_allow(bool ok) {
  if (!ok) {
    // lint: allow(no-throw-across-boundary) internal type; caught at the boundary
    throw Internal{};
  }
  return 0;
}

int missing_justification(bool ok) {
  if (!ok) throw Internal{};  /* EXPECT: no-throw-across-boundary */ /* EXPECT: lint-annotation */ // lint: allow(no-throw-across-boundary)
  return 0;
}

int unknown_rule(bool ok) {
  if (!ok) throw Internal{};  /* EXPECT: no-throw-across-boundary */ /* EXPECT: lint-annotation */ // lint: allow(no-such-rule) because reasons
  return 0;
}

// Prose that merely mentions the lint: allow(...) syntax mid-comment
// is not an annotation, and doc-comment examples keep their slashes:
/// // lint: allow(no-throw-across-boundary) nested example, inert
int prose() { return 0; }

}  // namespace fixture
