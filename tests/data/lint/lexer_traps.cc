// LINT-PATH: src/shard/fixture_traps.cpp
//
// Lexer traps: rule patterns inside comments, string literals, raw
// strings, char literals, and preprocessor directives are invisible to
// the token stream -- only the two real syscalls below are findings.
#include <string>

#define FIXTURE_OPEN_ALIAS ::open

namespace fixture {

// ::open( and throw in prose -- not findings.
const char* kPlain = "call ::open( then throw, says this string";
const char* kRaw = R"(::rename(a, b) and std::ifstream in a raw string)";
const char* kRawDelim = R"delim(even )" inside: ::fsync(fd))delim";
const char kQuote = '"';
const char* kMulti = R"(a raw string
spanning lines with ::write(fd, p, n) inside)";

int real_findings(const std::string& tmp, int fd) {
  const long big = 1'000'000;
  ::unlink(tmp.c_str());  // EXPECT: failpoint-seam
  ::fsync(fd);  // EXPECT: failpoint-seam
  return static_cast<int>(big);
}

}  // namespace fixture
