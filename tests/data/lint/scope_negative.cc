// LINT-PATH: src/cpg/fixture_scope.cpp
//
// Scoping: src/cpg/ is outside the no-throw, failpoint-seam, and
// determinism boundaries, so none of these are findings here. (The
// finalizer-purity stdout rule still covers all of src/; this file
// deliberately writes nothing to stdout.)
#include <cstdlib>
#include <stdexcept>

namespace fixture {

int build(int fd, bool ok) {
  if (!ok) throw std::runtime_error("cpg may throw internally");
  ::write(fd, "x", 1);
  return rand();
}

}  // namespace fixture
