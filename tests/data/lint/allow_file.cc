// LINT-PATH: src/shard/fixture_allowfile.cpp
//
// lint: allow-file(failpoint-seam) fixture: this file plays the designated seam-helper role
//
// allow-file covers every instance of its one rule -- and nothing
// else: the throw below is still a finding.
#include <fstream>
#include <stdexcept>
#include <string>

namespace fixture {

int helper_a(const std::string& path) { return ::open(path.c_str(), 0); }

void helper_b(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  (void)in;
}

void other_rule(bool ok) {
  if (!ok) throw std::runtime_error("not covered");  // EXPECT: no-throw-across-boundary
}

}  // namespace fixture
