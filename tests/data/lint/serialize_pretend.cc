// LINT-PATH: src/cpg/serialize.cpp
//
// Pretend working tree for the *.diff fixtures: the diff rule resolves
// touched files against this fixture's function extents. No findings
// of its own.
#include <cstdint>
#include <vector>

namespace fixture {

inline constexpr std::uint32_t kCpgFormatVersion = 7;

std::vector<std::uint8_t> serialize_graph(const std::vector<int>& nodes) {
  std::vector<std::uint8_t> out;
  out.push_back(kCpgFormatVersion);
  for (const int n : nodes) {
    out.push_back(static_cast<std::uint8_t>(n));
    out.push_back(static_cast<std::uint8_t>(n >> 8));
  }
  return out;
}

std::vector<int> deserialize_graph(const std::vector<std::uint8_t>& bytes) {
  std::vector<int> nodes;
  for (std::size_t i = 1; i + 1 < bytes.size(); i += 2) {
    nodes.push_back(bytes[i] | (bytes[i + 1] << 8));
  }
  return nodes;
}

bool validate_graph(const std::vector<int>& nodes) {
  int prev = -1;
  for (const int n : nodes) {
    if (n < prev) return false;
    prev = n;
  }
  return true;
}

}  // namespace fixture
