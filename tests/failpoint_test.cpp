// Fault-injection tests: the failpoint registry itself (spec parsing,
// kind semantics, the global hit counter), the store's bounded-retry
// and quarantine behaviour under injected transient and permanent
// faults, degraded-mode serving, and the crash-consistency sweep --
// kill an append at every IO step and assert the reopened store serves
// byte-identical replies from the old or the new generation, never a
// hybrid.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cpg/graph.h"
#include "history_fixtures.h"
#include "query/engine.h"
#include "query/wire.h"
#include "shard/engine.h"
#include "shard/fsck.h"
#include "shard/format.h"
#include "shard/planner.h"
#include "shard/store.h"
#include "util/failpoint.h"
#include "util/parallel.h"

namespace {

using namespace inspector;
using namespace inspector::query;
namespace fixtures = inspector::fixtures;
namespace fs = std::filesystem;

using util::clear_failpoints;
using util::configure_failpoints;
using util::failpoint_hits;

/// Every test disarms on exit, so a failing assertion cannot leak an
/// armed spec into later tests' file IO.
struct FailpointGuard {
  ~FailpointGuard() { clear_failpoints(); }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// The same paginated query batch shard_compat_test compares across
/// format versions -- here it pins reply bytes across crash points.
std::string serialized_session(QueryEngine& engine, cpg::NodeId last,
                               std::uint64_t first_page) {
  const auto paged = [](Query q, std::uint64_t page_size) {
    QueryOptions options;
    options.page_size = page_size;
    return QueryEngine::BatchItem{std::move(q), options};
  };
  const std::vector<QueryEngine::BatchItem> items = {
      paged(BackwardSliceQuery{last}, 7),
      paged(ForwardSliceQuery{0}, 5),
      paged(RacesQuery{}, 13),
      paged(TaintQuery{{0, 3, 7}, true}, 9),
      paged(CriticalPathQuery{}, 6),
      {StatsQuery{}, {}},
      {HappensBeforeQuery{0, last}, {}},
      paged(PageAccessorsQuery{first_page}, 4),
      paged(LatestWritersQuery{last}, 3),
  };
  const auto replies = engine.run_batch(QueryEngine::kDefaultSession, items);

  std::string out;
  std::uint64_t id = 1;
  std::vector<std::uint64_t> cursors;
  for (const auto& reply : replies) {
    out += wire::serialize_reply(id++, reply);
    out += '\n';
    if (reply.ok() && reply->cursor != 0) cursors.push_back(reply->cursor);
  }
  for (const std::uint64_t cursor : cursors) {
    while (true) {
      const auto page = engine.next(cursor);
      out += wire::serialize_reply(id++, page);
      out += '\n';
      if (!page.ok() || !page->has_more) break;
    }
  }
  return out;
}

std::string serve_store(const std::string& dir, cpg::NodeId last,
                        std::uint64_t first_page,
                        bool allow_degraded = false) {
  auto store = shard::ShardStore::open(dir);
  EXPECT_TRUE(store.ok()) << store.status().message();
  shard::ShardedQueryEngine engine(std::move(store).value(),
                                   query::EngineOptions{}, allow_degraded);
  return serialized_session(engine, last, first_page);
}

void copy_store(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

TEST(FailpointSpec, ParseErrorsNameTheClauseAndKeepThePriorSpec) {
  FailpointGuard guard;
  const Status bad_kind = configure_failpoints("shard.read_file:explode");
  EXPECT_EQ(bad_kind.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_kind.message().find("explode"), std::string::npos)
      << bad_kind.message();
  EXPECT_FALSE(configure_failpoints("no-kind-at-all").ok());
  EXPECT_FALSE(configure_failpoints("a:error:notanumber").ok());

  // A rejected spec leaves the previously armed one active.
  const std::string path = temp_path("failpoint_spec.bin");
  ASSERT_TRUE(shard::write_file_bytes(path, {1, 2, 3}).ok());
  ASSERT_TRUE(configure_failpoints("shard.read_file:error").ok());
  EXPECT_FALSE(configure_failpoints("still:bad:kind:extra").ok());
  EXPECT_EQ(shard::read_file_bytes(path).status().code(),
            StatusCode::kUnavailable);

  // An empty spec disarms.
  ASSERT_TRUE(configure_failpoints("").ok());
  EXPECT_TRUE(shard::read_file_bytes(path).ok());
}

TEST(FailpointSpec, KindSemantics) {
  FailpointGuard guard;
  const std::string path = temp_path("failpoint_kinds.bin");
  const std::vector<std::uint8_t> payload(64, 0xAB);
  ASSERT_TRUE(shard::write_file_bytes(path, payload).ok());

  // error:N passes the first N hits, then fails every later hit.
  ASSERT_TRUE(configure_failpoints("shard.read_file:error:2").ok());
  EXPECT_TRUE(shard::read_file_bytes(path).ok());
  EXPECT_TRUE(shard::read_file_bytes(path).ok());
  EXPECT_EQ(shard::read_file_bytes(path).status().code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(shard::read_file_bytes(path).ok());

  // transient:K fails the first K hits, then passes -- the shape a
  // retry loop must survive.
  ASSERT_TRUE(configure_failpoints("shard.read_file:transient:2").ok());
  EXPECT_EQ(shard::read_file_bytes(path).status().code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(shard::read_file_bytes(path).ok());
  const auto third = shard::read_file_bytes(path);
  ASSERT_TRUE(third.ok()) << third.status().message();
  EXPECT_EQ(*third, payload);

  // torn-write persists a prefix of the bytes without syncing, then
  // fails -- the on-disk state a crash mid-write leaves behind.
  const std::string torn = temp_path("failpoint_torn.bin");
  ASSERT_TRUE(configure_failpoints("shard.write_file:torn-write").ok());
  EXPECT_FALSE(shard::write_file_bytes(torn, payload).ok());
  ASSERT_TRUE(fs::exists(torn));
  EXPECT_LT(fs::file_size(torn), payload.size());

  // delay passes (and, with 0 ms, is the pure counting kind); the
  // global hit counter counts every check, armed or not.
  ASSERT_TRUE(configure_failpoints("*:delay:0").ok());
  EXPECT_EQ(failpoint_hits(), 0u);
  EXPECT_TRUE(shard::read_file_bytes(path).ok());
  EXPECT_TRUE(shard::read_file_bytes(path).ok());
  EXPECT_EQ(failpoint_hits(), 2u);
}

TEST(FailpointStore, TransientReadsRetryUnderThePolicy) {
  FailpointGuard guard;
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(42);
  const std::string dir = temp_path("failpoint_retry");
  ASSERT_TRUE(shard::write_store(source, dir, shard::PlanOptions{3}).ok());

  shard::StoreOptions options;
  options.retry_policy.max_attempts = 3;
  options.retry_policy.initial_backoff_ms = 0;
  auto store = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().message();

  // Two injected transient failures sit inside the three-attempt
  // budget: the load succeeds and the stats record both retries.
  ASSERT_TRUE(configure_failpoints("shard.read_file:transient:2").ok());
  const auto loaded = store.value()->load(0);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(store.value()->stats().retries, 2u);
  EXPECT_EQ(store.value()->stats().quarantined_shards, 0u);

  // Three failures exhaust it: the shard is quarantined, and the
  // quarantine is sticky -- later loads return the same typed error
  // without touching the (now healthy) disk.
  ASSERT_TRUE(configure_failpoints("shard.read_file:transient:3").ok());
  const auto failed = store.value()->load(1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.status().message().find("quarantined"), std::string::npos)
      << failed.status().message();
  EXPECT_NE(failed.status().message().find("shard 1"), std::string::npos)
      << failed.status().message();
  clear_failpoints();
  const auto still = store.value()->load(1);
  ASSERT_FALSE(still.ok());
  EXPECT_EQ(still.status().message(), failed.status().message());
  EXPECT_EQ(store.value()->stats().quarantined_shards, 1u);
  EXPECT_EQ(store.value()->stats().retries, 4u);

  // Reopening lifts the quarantine.
  auto reopened = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value()->load(1).ok());
}

TEST(FailpointStore, PermanentFaultsAreNotRetried) {
  FailpointGuard guard;
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(43);
  const std::string dir = temp_path("failpoint_permanent");
  ASSERT_TRUE(shard::write_store(source, dir, shard::PlanOptions{2}).ok());

  auto manifest = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  // Corrupt bytes are permanent: one read, one decode failure, no
  // retries, straight to quarantine.
  const std::string file = dir + "/" + manifest->shards[0].file;
  auto bytes = shard::read_file_bytes(file);
  ASSERT_TRUE(bytes.ok());
  bytes.value()[bytes->size() / 2] ^= 0xFF;
  ASSERT_TRUE(shard::write_file_bytes(file, *bytes).ok());

  shard::StoreOptions options;
  options.retry_policy.max_attempts = 5;
  options.retry_policy.initial_backoff_ms = 0;
  auto store = shard::ShardStore::open(dir, options);
  ASSERT_TRUE(store.ok());
  const auto loaded = store.value()->load(0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.value()->stats().retries, 0u)
      << "corrupt bytes must not burn the retry budget";
  // The healthy shard still serves.
  EXPECT_TRUE(store.value()->load(1).ok());
}

TEST(FailpointStore, DegradedModeServesPartialAnswers) {
  FailpointGuard guard;
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const cpg::Graph source = fixtures::random_history(44);
  const auto last = static_cast<cpg::NodeId>(source.nodes().size() - 1);
  const std::uint64_t first_page =
      source.page_count() > 0 ? source.pages()[0] : 0;
  const std::string dir = temp_path("failpoint_degraded");
  ASSERT_TRUE(shard::write_store(source, dir, shard::PlanOptions{3}).ok());

  // On a healthy store the degraded switch changes nothing: replies
  // are byte-identical with it on and off, and no reply carries the
  // marker.
  const std::string healthy = serve_store(dir, last, first_page, false);
  EXPECT_EQ(serve_store(dir, last, first_page, true), healthy);
  EXPECT_EQ(healthy.find("\"degraded\""), std::string::npos);

  // Corrupt the last shard (the highest rank range, where `last`
  // lives).
  auto manifest = shard::ShardReader::read_manifest(dir);
  ASSERT_TRUE(manifest.ok());
  const std::string file = dir + "/" + manifest->shards.back().file;
  auto bytes = shard::read_file_bytes(file);
  ASSERT_TRUE(bytes.ok());
  bytes.value()[bytes->size() / 2] ^= 0xFF;
  ASSERT_TRUE(shard::write_file_bytes(file, *bytes).ok());

  // Default serving: queries that touch the quarantined shard fail
  // with the typed kUnavailable, and nothing is marked degraded.
  const std::string plain = serve_store(dir, last, first_page, false);
  EXPECT_NE(plain.find("\"status\":\"unavailable\""), std::string::npos);
  EXPECT_EQ(plain.find("\"degraded\""), std::string::npos);

  // Opt-in degraded serving: partial answers come back marked. The
  // anchored queries whose anchor node lives on the dead shard still
  // fail -- without the anchor there is no partial answer, only a
  // wrong one.
  const std::string degraded = serve_store(dir, last, first_page, true);
  EXPECT_NE(degraded.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(degraded.find("\"status\":\"unavailable\""), std::string::npos)
      << "anchored-on-dead-shard queries must fail even in degraded mode";

  // A query confined to a healthy shard is byte-identical to its
  // healthy-store reply in both modes: node 0's backward slice is
  // itself, entirely inside shard 0.
  const auto one_query = [&](bool allow) {
    auto store = shard::ShardStore::open(dir);
    EXPECT_TRUE(store.ok());
    shard::ShardedQueryEngine engine(std::move(store).value(),
                                     query::EngineOptions{}, allow);
    return wire::serialize_reply(
        1, engine.run(QueryEngine::kDefaultSession, BackwardSliceQuery{0}));
  };
  const std::string untouched = one_query(false);
  EXPECT_EQ(one_query(true), untouched);
  EXPECT_NE(untouched.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(untouched.find("\"degraded\""), std::string::npos);
}

TEST(FailpointStore, CrashConsistencySweepOverEveryAppendStep) {
  FailpointGuard guard;
  fixtures::ThreadCountGuard threads;
  util::set_analysis_threads(1);
  const cpg::Graph full = fixtures::barrier_history(7, 5);
  const auto last = static_cast<cpg::NodeId>(full.nodes().size() - 1);
  const std::uint64_t first_page =
      full.page_count() > 0 ? full.pages()[0] : 0;
  const auto cut = static_cast<std::uint32_t>(full.nodes().size() * 6 / 10);
  const auto prefix = shard::rank_prefix(full, cut);
  ASSERT_TRUE(prefix.ok()) << prefix.status().message();

  const std::string base = temp_path("failpoint_sweep_base");
  fs::remove_all(base);
  ASSERT_TRUE(shard::write_store(*prefix, base, shard::PlanOptions{3}).ok());
  const std::string before = serve_store(base,
      static_cast<cpg::NodeId>(prefix->nodes().size() - 1), first_page);

  // The committed-append reply stream.
  const std::string grown = temp_path("failpoint_sweep_grown");
  copy_store(base, grown);
  ASSERT_TRUE(shard::append(grown, full).ok());
  const std::string after = serve_store(grown, last, first_page);
  EXPECT_NE(before, after);

  // Counting pass: one clean append under a pass-through wildcard
  // tells us how many IO steps there are to kill.
  const std::string counting = temp_path("failpoint_sweep_count");
  copy_store(base, counting);
  ASSERT_TRUE(configure_failpoints("*:delay:0").ok());
  ASSERT_TRUE(shard::append(counting, full).ok());
  const std::uint64_t steps = failpoint_hits();
  clear_failpoints();
  ASSERT_GT(steps, 0u);

  // Kill the append at every step. Whatever step dies, the reopened
  // store must serve exactly the old or exactly the new generation's
  // bytes -- and fsck must see only repairable debris, never damage.
  const std::string victim = temp_path("failpoint_sweep_victim");
  for (std::uint64_t n = 0; n < steps; ++n) {
    copy_store(base, victim);
    ASSERT_TRUE(
        configure_failpoints("*:error:" + std::to_string(n)).ok());
    const auto crashed = shard::append(victim, full);
    EXPECT_FALSE(crashed.ok()) << "step " << n << " did not propagate";
    clear_failpoints();

    auto store = shard::ShardStore::open(victim);
    ASSERT_TRUE(store.ok())
        << "step " << n << ": " << store.status().message();
    const shard::Manifest& m = store.value()->manifest();
    const bool committed = m.total_nodes == full.nodes().size();
    shard::ShardedQueryEngine engine(std::move(store).value());
    const std::string served = serialized_session(
        engine,
        committed ? last
                  : static_cast<cpg::NodeId>(prefix->nodes().size() - 1),
        first_page);
    EXPECT_EQ(served, committed ? after : before)
        << "step " << n << " produced a hybrid generation";

    // A crash can only leave *repairable* debris -- stranded temps and
    // unreferenced new-generation files -- never damage to the files
    // the committed manifest references.
    const auto report = shard::fsck(victim);
    ASSERT_TRUE(report.ok()) << report.status().message();
    for (const auto& i : report->issues) {
      EXPECT_TRUE(i.repairable)
          << "step " << n << " left unrepairable damage: "
          << shard::to_string(i.kind) << " " << i.file << ": " << i.detail;
    }
  }

  // And the canonical recovery: repair the last victim, re-run the
  // append, and the store serves the committed stream.
  const auto repaired =
      shard::fsck(victim, shard::FsckOptions{/*repair=*/true});
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->damaged());
  ASSERT_TRUE(shard::append(victim, full).ok());
  EXPECT_EQ(serve_store(victim, last, first_page), after);
  EXPECT_TRUE(shard::fsck(victim)->clean());
}

}  // namespace
