// Bonus workflow (§I): incremental computation from provenance
// (the iThreads/Incoop lineage the paper cites).
//
// Run histogram once, record its CPG, then pretend a few input pages
// changed (one worker's chunk). Change propagation over the CPG tells
// us exactly which sub-computations must re-run; everything else can be
// reused. The experiment shows the reuse fraction for localized edits.
#include <cstdint>
#include <iostream>

#include "analysis/incremental.h"
#include "core/inspector.h"
#include "core/report.h"
#include "memtrack/shared_memory.h"
#include "workloads/registry.h"

int main() {
  std::cout << "Workflow: incremental re-execution from the CPG\n\n";

  inspector::workloads::WorkloadConfig config;
  config.threads = 8;
  config.scale = 0.4;
  const auto program = inspector::workloads::make_histogram(config);
  inspector::core::Inspector insp;
  const auto result = insp.run(program);
  const auto& graph = *result.graph;

  // Input pages, in address order.
  std::vector<std::uint64_t> input_pages;
  for (const auto& w : program.input) {
    input_pages.push_back(inspector::memtrack::page_id_of(w.addr));
  }

  inspector::core::Table table(
      {"changed_pages", "dirty_nodes", "total_nodes", "reuse"});
  for (std::size_t changed : {1u, 4u, 16u, 64u}) {
    inspector::PageSet delta;
    for (std::size_t i = 0; i < changed && i < input_pages.size(); ++i) {
      delta.push_back(input_pages[i]);
    }
    inspector::page_set_normalize(delta);
    const auto inv = inspector::analysis::invalidate(graph, delta);
    table.add_row({std::to_string(delta.size()),
                   std::to_string(inv.dirty.size()),
                   std::to_string(graph.nodes().size()),
                   inspector::core::format_fixed(
                       100.0 * inv.reuse_fraction(graph.nodes().size()), 1) +
                       "%"});
  }
  std::cout << table << "\n";

  // Whole-input change: everything that touches input re-runs.
  inspector::PageSet all(input_pages.begin(), input_pages.end());
  const auto full = inspector::analysis::invalidate(graph, all);
  std::cout << "whole-input change: " << full.dirty.size() << "/"
            << graph.nodes().size()
            << " sub-computations re-run (the non-reader remainder is "
               "spawn/join bookkeeping)\n\n"
            << "Localized edits invalidate only the owning worker's chain "
               "plus the downstream merge -- the CPG is the memoization "
               "index an incremental scheduler needs.\n";
  return 0;
}
