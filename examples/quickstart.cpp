// Quickstart: run one workload under INSPECTOR, print the provenance
// overheads and a peek at the Concurrent Provenance Graph.
//
//   ./quickstart [workload] [threads]
//
// Defaults to histogram on 8 threads. Shows the fig-5 style overhead,
// the table-7 style fault counts, the fig-9 style log volume, and the
// first few CPG nodes and edges.
#include <cstdint>
#include <iostream>
#include <string>

#include "core/inspector.h"
#include "core/report.h"
#include "cpg/serialize.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "histogram";
  const std::uint32_t threads =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 8;

  inspector::workloads::WorkloadConfig config;
  config.threads = threads;
  auto program = inspector::workloads::make_workload(name, config);

  inspector::core::Inspector insp;
  auto cmp = insp.compare(program);
  const auto& t = cmp.traced.stats;

  std::cout << "workload: " << name << " (" << threads << " threads)\n"
            << "native time:     " << cmp.native.stats.sim_time_ns / 1000
            << " us\n"
            << "inspector time:  " << t.sim_time_ns / 1000 << " us\n"
            << "time overhead:   "
            << inspector::core::format_overhead(cmp.time_overhead()) << "\n"
            << "work overhead:   "
            << inspector::core::format_overhead(cmp.work_overhead()) << "\n"
            << "page faults:     " << t.page_faults << " (" << t.read_faults
            << " read / " << t.write_faults << " write)\n"
            << "commits:         " << t.commits << " ("
            << t.pages_committed << " pages, " << t.bytes_committed
            << " bytes)\n"
            << "threads spawned: " << t.threads_spawned << "\n"
            << "PT log:          " << t.pt_bytes << " bytes, "
            << t.pt_tnt_bits << " TNT bits, " << t.pt_tip_packets
            << " TIPs, " << t.pt_overflows << " overflows\n"
            << "breakdown:       threading-lib "
            << t.breakdown.threading_lib_ns / 1000 << " us, PT "
            << t.breakdown.pt_ns / 1000 << " us\n";

  const auto& graph = *cmp.traced.graph;
  const auto stats = graph.stats();
  std::cout << "\nCPG: " << stats.nodes << " sub-computations, "
            << stats.control_edges << " control edges, " << stats.sync_edges
            << " sync edges, " << stats.thunks << " thunks\n";

  std::string reason;
  std::cout << "CPG valid: " << (graph.validate(&reason) ? "yes" : reason)
            << "\n";

  auto verification = inspector::core::Inspector::verify_pt(cmp.traced);
  std::cout << "PT decode cross-check: "
            << (verification.ok ? "OK" : "MISMATCH") << " ("
            << verification.branches_checked << " branches, "
            << verification.gaps << " gaps)\n";
  if (!verification.ok) std::cout << verification.detail;

  std::cout << "\nfirst nodes:\n";
  for (std::size_t i = 0; i < graph.nodes().size() && i < 6; ++i) {
    std::cout << "  " << graph.nodes()[i] << "\n";
  }
  return verification.ok ? 0 : 1;
}
