// Case study 3 (§VIII "Efficiency: Memory management for NUMA").
//
// The CPG's page-granular read/write sets tell us which thread touches
// which memory -- exactly what a NUMA placement policy needs. This
// example derives per-thread page-access affinity from the CPG of a
// run, partitions pages across simulated NUMA nodes by dominant
// accessor, and reports how many cross-node ("remote") accesses the
// provenance-guided layout saves versus naive first-touch-by-main.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "core/inspector.h"
#include "core/report.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;

constexpr std::uint32_t kNumaNodes = 2;

struct PageAffinity {
  // accesses[page][thread] = touches (reads + writes) of page by thread
  std::map<std::uint64_t, std::map<cpg::ThreadId, std::uint64_t>> accesses;
};

PageAffinity affinity_from_cpg(const cpg::Graph& g) {
  PageAffinity a;
  for (const auto& node : g.nodes()) {
    for (std::uint64_t page : node.read_set) {
      ++a.accesses[page][node.thread];
    }
    for (std::uint64_t page : node.write_set) {
      ++a.accesses[page][node.thread];
    }
  }
  return a;
}

}  // namespace

int main() {
  std::cout << "Case study: provenance-guided NUMA placement (paper §VIII)\n\n";

  workloads::WorkloadConfig config;
  config.threads = 8;
  config.scale = 0.4;
  const auto program = workloads::make_histogram(config);
  core::Inspector insp;
  const auto result = insp.run(program);
  const auto affinity = affinity_from_cpg(*result.graph);

  // Thread -> NUMA node: round-robin worker placement (what the OS
  // scheduler would do for 8 workers on 2 sockets).
  auto node_of_thread = [](cpg::ThreadId t) { return t % kNumaNodes; };

  std::uint64_t naive_remote = 0;    // all pages on node 0 (main's node)
  std::uint64_t guided_remote = 0;   // pages placed with dominant accessor
  std::uint64_t total = 0;

  for (const auto& [page, per_thread] : affinity.accesses) {
    // Guided placement: the NUMA node whose threads touch it most.
    std::vector<std::uint64_t> node_touches(kNumaNodes, 0);
    for (const auto& [thread, count] : per_thread) {
      node_touches[node_of_thread(thread)] += count;
    }
    const std::uint32_t best_node = static_cast<std::uint32_t>(
        std::max_element(node_touches.begin(), node_touches.end()) -
        node_touches.begin());
    for (const auto& [thread, count] : per_thread) {
      total += count;
      if (node_of_thread(thread) != 0) naive_remote += count;
      if (node_of_thread(thread) != best_node) guided_remote += count;
    }
  }

  core::Table table({"layout", "remote_accesses", "remote_share"});
  table.add_row({"first-touch on main's node", std::to_string(naive_remote),
                 core::format_fixed(100.0 * naive_remote / total, 1) + "%"});
  table.add_row({"CPG-guided placement", std::to_string(guided_remote),
                 core::format_fixed(100.0 * guided_remote / total, 1) + "%"});
  std::cout << table << "\n";

  std::cout << "pages analyzed: " << affinity.accesses.size()
            << ", page-touch events: " << total << "\n"
            << "The CPG already contains the access pattern the NUMA "
               "optimizer needs -- no extra profiling run required.\n";
  return 0;
}
