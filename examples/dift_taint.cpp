// Case study 2 (§VIII "Security: Dynamic Information Flow Tracking").
//
// DIFT protects against data leaks by tracking which computations were
// influenced by sensitive input and restricting what they may output.
// The CPG makes this a graph reachability problem: taint the pages of
// the sensitive input region, propagate forward along happens-before
// dataflow (write-set -> read-set), and check every output
// sub-computation against the policy.
#include <cstdint>
#include <iostream>
#include <queue>
#include <unordered_set>

#include "core/inspector.h"
#include "memtrack/allocator.h"
#include "workloads/registry.h"

namespace {

using namespace inspector;

/// Forward taint propagation over the CPG. A sub-computation is tainted
/// when (a) it reads a tainted page, or (b) its same-thread predecessor
/// was tainted -- registers survive pthreads calls, so data read before
/// a lock() flows into the store performed inside the critical section
/// even though the page sets alone cannot see it. Every page a tainted
/// sub-computation writes becomes tainted. Processing in topological
/// (happens-before-compatible) order makes a single pass sufficient.
struct TaintResult {
  std::unordered_set<std::uint64_t> tainted_pages;
  std::vector<cpg::NodeId> tainted_nodes;
};

TaintResult propagate(const cpg::Graph& g,
                      const std::unordered_set<std::uint64_t>& seeds) {
  TaintResult result;
  result.tainted_pages = seeds;
  std::unordered_set<cpg::ThreadId> tainted_threads;  // register carry-over
  std::unordered_set<cpg::NodeId> tainted_nodes;
  for (cpg::NodeId id : g.topological_view()) {
    const auto& node = g.node(id);
    bool tainted = tainted_threads.contains(node.thread);
    if (!tainted) {
      for (std::uint64_t page : node.read_set) {
        if (result.tainted_pages.contains(page)) {
          tainted = true;
          break;
        }
      }
    }
    if (!tainted) continue;
    tainted_threads.insert(node.thread);
    tainted_nodes.insert(id);
    result.tainted_nodes.push_back(id);
    for (std::uint64_t page : node.write_set) {
      result.tainted_pages.insert(page);
    }
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "Case study: DIFT over the CPG (paper §VIII)\n\n";

  // Run word_count: its input file is the sensitive data.
  workloads::WorkloadConfig config;
  config.threads = 4;
  config.scale = 0.3;
  const auto program = workloads::make_word_count(config);
  core::Inspector insp;
  const auto result = insp.run(program);
  const auto& g = *result.graph;

  // Seed taint: every page of the mmap'ed input region.
  std::unordered_set<std::uint64_t> seeds;
  for (const auto& w : program.input) {
    seeds.insert(memtrack::page_id_of(w.addr));
  }
  std::cout << "tainted input pages: " << seeds.size() << "\n";

  const auto taint = propagate(g, seeds);
  std::cout << "tainted sub-computations: " << taint.tainted_nodes.size()
            << " / " << g.nodes().size() << "\n"
            << "tainted pages after propagation: "
            << taint.tainted_pages.size() << "\n\n";

  // Policy check: pretend every thread-exit sub-computation performs an
  // output syscall (write(2) of its results). The glibc-wrapper policy
  // checker of §VIII would block the tainted ones.
  std::size_t flagged = 0;
  for (const auto& node : g.nodes()) {
    if (node.end.kind != sync::SyncEventKind::kThreadExit) continue;
    const bool tainted =
        std::find(taint.tainted_nodes.begin(), taint.tainted_nodes.end(),
                  node.id) != taint.tainted_nodes.end();
    if (tainted) {
      ++flagged;
      std::cout << "POLICY: output at " << node
                << " carries input-derived data -> would require review\n";
    }
  }
  if (flagged == 0) {
    std::cout << "POLICY: no tainted output sites\n";
  }
  std::cout << "\nThe taint never leaves the provenance domain: pages the "
               "workers derived from the input (the shared count table) "
               "are tainted; unrelated pages are not.\n";
  return 0;
}
