// Case study 1 (§VIII "Dependability: Debugging programs").
//
// Multithreaded bugs are hard because the OS schedule is
// non-deterministic: the same binary can compute different answers on
// different runs. Core dumps say *what* the state is; the CPG says
// *why*. This example builds a program whose final answer depends on
// the lock-acquisition order (the paper's Figure-1 pattern), runs it
// under two different schedules, and uses the CPG's backward slice and
// latest-writer queries to explain each outcome.
#include <cstdint>
#include <iostream>

#include "core/inspector.h"
#include "memtrack/shared_memory.h"
#include "workloads/common.h"

namespace {

using namespace inspector;
using workloads::global_word;
using workloads::mutex_id;
using workloads::ScriptBuilder;

// The paper's Figure 1, as a runnable program:
//   T1.a: lock; x = ++y      (reads y, writes x and y)
//   T2.a: lock; y = 2 * x    (reads x, writes y)
//   T1.b: lock; y = y / 2    (reads y, writes y)
// Whether T1.b or T2.a acquires the lock first changes the final y.
runtime::Program figure1_program() {
  runtime::Program p;
  p.name = "figure1";
  const auto m = mutex_id(0);
  const auto start = workloads::barrier_id(0);
  p.barriers.push_back({start, 2});
  const std::uint64_t x = global_word(0);
  const std::uint64_t y = global_word(512);  // different page than x

  // Both threads repeatedly update y under the lock (T1 with the
  // figure's x = ++y / y = y/2 pair, T2 with y = 2*x). The final value
  // of y is whatever the *last* lock holder wrote -- and the lock
  // acquisition order is decided by OS scheduling jitter (§II).
  ScriptBuilder t1(1);
  t1.barrier_wait(start);  // both threads released together
  for (std::uint64_t i = 0; i < 8; ++i) {
    t1.lock(m);
    t1.load(y).store(y, 100 + i).store(x, 2 + i);
    t1.compute(2500);
    t1.branch(i % 2 == 0);  // the if (flag == 0) branch
    t1.unlock(m);
    t1.compute(9000);
  }
  p.scripts.push_back(t1.take());

  ScriptBuilder t2(2);
  t2.barrier_wait(start);
  for (std::uint64_t i = 0; i < 8; ++i) {
    t2.lock(m);
    t2.load(x).store(y, 200 + i);  // y = 2 * x
    t2.unlock(m);
    t2.compute(9000);
  }
  p.scripts.push_back(t2.take());

  ScriptBuilder main(3);
  main.store(y, 1);  // y = 1 initially
  main.spawn(0).spawn(1).join(0).join(1);
  main.load(y);
  p.main_script = 2;
  p.scripts.push_back(main.take());
  return p;
}

void explain(const runtime::ExecutionResult& result, std::uint64_t y_addr) {
  const auto& g = *result.graph;
  const std::uint64_t y_page = memtrack::page_id_of(y_addr);

  std::cout << "  final y-word = "
            << result.memory->read_word(y_addr) << "\n";

  // Who wrote y, in happens-before order?
  std::cout << "  writers of y's page, with order:\n";
  const auto writers = g.writers_of_page(y_page);
  for (auto w : writers) {
    std::cout << "    " << g.node(w) << "\n";
  }
  // The main thread's final read: which writer does it actually see?
  const auto main_nodes = g.thread_nodes(0);
  const cpg::NodeId last_main = main_nodes.back();
  for (const auto& e : g.latest_writers(last_main)) {
    if (e.object == y_page) {
      const auto& n = g.node(e.from);
      std::cout << "  main's final read of y is explained by thread "
                << n.thread << "'s sub-computation alpha=" << n.alpha
                << "\n";
      std::cout << "  full provenance slice of that read: ";
      for (auto id : g.backward_slice(last_main)) {
        std::cout << "L" << g.node(id).thread << "[" << g.node(id).alpha
                  << "] ";
      }
      std::cout << "\n";
    }
  }
}

}  // namespace

int main() {
  std::cout << "Case study: explaining a schedule-dependent result "
               "(paper §VIII, figure 1)\n\n";
  const auto program = figure1_program();
  const std::uint64_t y = global_word(512);

  // Sweep schedules: the OS race makes different seeds compute
  // different final values of y.
  std::uint64_t first_seed = 0, second_seed = 0;
  std::uint64_t first_value = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    core::Options options;
    options.schedule_seed = seed;
    // Model a loaded machine: preemptions and IRQs add tens of
    // microseconds of per-slice noise, enough to reorder the lock
    // acquisitions of the two racing threads.
    options.schedule_jitter_ns = 120'000;
    const auto result = core::Inspector(options).run(program);
    const std::uint64_t value = result.memory->read_word(y);
    if (first_seed == 0) {
      first_seed = seed;
      first_value = value;
    } else if (value != first_value && second_seed == 0) {
      second_seed = seed;
    }
  }
  std::cout << "swept 32 schedules: found "
            << (second_seed != 0 ? "two" : "one")
            << " distinct outcome(s)\n\n";

  for (std::uint64_t seed : {first_seed, second_seed}) {
    if (seed == 0) continue;
    core::Options options;
    options.schedule_seed = seed;
    options.schedule_jitter_ns = 120'000;
    const auto result = core::Inspector(options).run(program);
    std::cout << "schedule seed " << seed << ":\n";
    explain(result, y);
    std::cout << "\n";
  }
  std::cout << "The runs disagree on y; the CPG pinpoints the "
               "interleaving (schedule edges) and the exact "
               "sub-computation whose write each read observed -- the "
               "\"why\" that a core dump cannot provide.\n";
  return 0;
}
